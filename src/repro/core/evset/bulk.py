"""Bulk eviction-set construction: PageOffset and WholeSys (Sections 2.2.3, 5.3).

The attacker rarely knows the target LLC/SF set, so Step 1 builds eviction
sets for *every* set at a page offset (PageOffset, U_LLC sets) or in the
whole system (WholeSys, 64x more).  The procedure per page offset:

1. Build one candidate set (N = 3*U*W addresses, one page each).
2. Partition it into U_L2 filtered groups: repeatedly build an L2 eviction
   set for an unclaimed candidate and filter the remainder with it
   (Section 5.1).  Each group holds the candidates of one L2 set.
3. Within each group, repeatedly pick an unclaimed target, skip it if an
   already-built eviction set covers it, otherwise prune a new minimal SF
   eviction set from the group (Section 2.2.3's dedup loop).

WholeSys reuses the filtered groups of the base offset by shifting every
address by the page-offset delta (Section 5.3.1), so only U_L2 filtering
executions are needed for the entire system.

Bulk construction is where the fused kernels pay off end to end: the
candidate pool's translation plane is warmed once in
:func:`build_candidate_set` and every downstream filter/prune/dedup test
reuses those rows (DESIGN.md §2.3).  WholeSys's shifted addresses are new
VAs and get their own plane rows on first use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...config import LINE_BYTES
from ...errors import BudgetExceededError, EvictionSetError
from ..context import AttackerContext
from .candidates import build_candidate_set, candidate_set_size
from .driver import construct_sf_evset, make_algorithm
from .filtering import build_l2_eviction_set, filter_candidates, shift_candidates
from .primitives import EvictionTester
from .types import BuildOutcome, EvictionSet, EvsetConfig


@dataclass
class BulkResult:
    """Outcome of a bulk construction run."""

    scenario: str
    page_offsets: List[int]
    evsets: List[EvictionSet] = field(default_factory=list)
    n_targets_attempted: int = 0
    n_failures: int = 0
    elapsed_cycles: int = 0
    filtering_cycles: int = 0
    timed_out: bool = False

    def elapsed_seconds(self, clock_ghz: float) -> float:
        return self.elapsed_cycles / (clock_ghz * 1e9)

    # -- Ground-truth validation (harness-side; uses simulator knowledge) ----

    def coverage(self, ctx: AttackerContext) -> Tuple[int, int]:
        """(valid eviction sets, distinct true cache sets covered)."""
        valid = 0
        covered = set()
        for evset in self.evsets:
            sets = {ctx.true_set_of(va) for va in evset.vas}
            if len(sets) == 1:
                valid += 1
                covered.add(next(iter(sets)))
        return valid, len(covered)

    def success_rate(self, ctx: AttackerContext) -> float:
        """Distinct correctly-covered sets / expected sets for the scenario."""
        expected = ctx.machine.cfg.u_llc * len(self.page_offsets)
        _, covered = self.coverage(ctx)
        return covered / expected if expected else 0.0


def _build_filtered_groups(
    ctx: AttackerContext,
    candidate_vas: List[int],
    cfg: EvsetConfig,
) -> Tuple[List[Tuple[EvictionSet, List[int]]], int]:
    """Partition candidates into per-L2-set filtered groups.

    Returns (groups, cycles spent filtering).  Each group is
    (l2_eviction_set, member_vas).
    """
    machine = ctx.machine
    start = machine.now
    u_l2 = machine.cfg.u_l2
    remaining = list(candidate_vas)
    groups: List[Tuple[EvictionSet, List[int]]] = []
    min_group = machine.cfg.sf.ways + 1
    while remaining and len(groups) < 2 * u_l2:
        target = remaining[0]
        try:
            l2_evset = build_l2_eviction_set(
                ctx, target, EvsetConfig(budget_ms=cfg.budget_ms), candidates=remaining[1:]
            )
        except EvictionSetError:
            remaining.pop(0)
            continue
        group = filter_candidates(ctx, l2_evset, remaining)
        if len(group) >= min_group:
            groups.append((l2_evset, group))
        member_set = set(group)
        member_set.add(target)
        remaining = [va for va in remaining if va not in member_set]
    return groups, machine.now - start


def _construct_from_group(
    ctx: AttackerContext,
    algorithm,
    group: List[int],
    cfg: EvsetConfig,
    result: BulkResult,
    overall_deadline: Optional[int],
) -> None:
    """The Section 2.2.3 loop over one filtered group (in-place on result)."""
    machine = ctx.machine
    w = machine.cfg.sf.ways
    pool = list(group)
    built_here: List[EvictionSet] = []
    sf_tester = EvictionTester(ctx, mode="sf", parallel=True)
    while len(pool) > w:
        if overall_deadline is not None and machine.now > overall_deadline:
            result.timed_out = True
            return
        target = pool.pop(0)
        # Dedup: skip targets an existing set already covers (step 4).
        covered = False
        for evset in built_here:
            if sf_tester.test(target, evset.vas) and sf_tester.test(
                target, evset.vas
            ):
                covered = True
                break
        if covered:
            continue
        result.n_targets_attempted += 1
        per_set_deadline = machine.now + cfg.budget_cycles(machine.cfg.clock_ghz)
        if overall_deadline is not None:
            per_set_deadline = min(per_set_deadline, overall_deadline)
        outcome = construct_sf_evset(
            ctx, algorithm, target, pool, cfg, deadline=per_set_deadline
        )
        if outcome.success:
            evset = outcome.evset
            built_here.append(evset)
            result.evsets.append(evset)
            members = set(evset.vas)
            pool = [va for va in pool if va not in members]
        else:
            result.n_failures += 1


def bulk_construct_page_offset(
    ctx: AttackerContext,
    algorithm,
    page_offset: int,
    cfg: EvsetConfig = EvsetConfig(budget_ms=100.0),
    deadline: Optional[int] = None,
    candidate_vas: Optional[List[int]] = None,
) -> BulkResult:
    """Build eviction sets for every SF set at one page offset."""
    if isinstance(algorithm, str):
        algorithm = make_algorithm(algorithm)
    machine = ctx.machine
    start = machine.now
    result = BulkResult(scenario="page-offset", page_offsets=[page_offset])
    if candidate_vas is None:
        candidate_vas = build_candidate_set(ctx, page_offset).vas
    groups, filtering_cycles = _build_filtered_groups(ctx, candidate_vas, cfg)
    result.filtering_cycles = filtering_cycles
    for _, group in groups:
        _construct_from_group(ctx, algorithm, group, cfg, result, deadline)
        if result.timed_out:
            break
    result.elapsed_cycles = machine.now - start
    return result


def bulk_construct_whole_sys(
    ctx: AttackerContext,
    algorithm,
    cfg: EvsetConfig = EvsetConfig(budget_ms=100.0),
    deadline: Optional[int] = None,
    offsets: Optional[Sequence[int]] = None,
    base_offset: int = 0,
) -> BulkResult:
    """Build eviction sets for all SF sets in the system.

    ``offsets`` may restrict the line offsets covered (scaled-down runs);
    default is all 64.  Filtering runs once, at ``base_offset``; every other
    offset reuses the shifted filtered groups (Section 5.3.1).
    """
    if isinstance(algorithm, str):
        algorithm = make_algorithm(algorithm)
    machine = ctx.machine
    page_bytes = machine.cfg.page_bytes
    if offsets is None:
        offsets = [i * LINE_BYTES for i in range(page_bytes // LINE_BYTES)]
    offsets = list(offsets)
    if base_offset not in offsets:
        offsets.insert(0, base_offset)
    start = machine.now
    result = BulkResult(scenario="whole-sys", page_offsets=offsets)
    candidate_vas = build_candidate_set(ctx, base_offset).vas
    base_groups, filtering_cycles = _build_filtered_groups(ctx, candidate_vas, cfg)
    result.filtering_cycles = filtering_cycles
    for offset in offsets:
        delta = offset - base_offset
        for _, group in base_groups:
            shifted = group if delta == 0 else shift_candidates(group, delta, page_bytes)
            _construct_from_group(ctx, algorithm, shifted, cfg, result, deadline)
            if result.timed_out:
                result.elapsed_cycles = machine.now - start
                return result
    result.elapsed_cycles = machine.now - start
    return result
