"""Binary-search address pruning — the paper's contribution (Section 5.2).

For a W-way cache, the *tipping point* tau is the smallest prefix length n
such that the first n candidates evict the target; the tau-th candidate is
congruent.  Binary search finds each tipping point in O(log N) parallel
TestEviction calls; the found congruent address is swapped to the front
and excluded from further searches.  After W iterations the first W
addresses form a minimal eviction set (Figure 4).

Backtracking (noise recovery): a false-positive TestEviction can drive UB
below the true tipping point; this is detected when the converged prefix
fails a verification test, and repaired by growing UB with a large stride
until the prefix evicts again, then restarting the iteration's search.

Each probe is one ``tester.test`` over a prefix of the same ``addrs``
list, so on an engaged data plane every query hits the fused
``test_eviction_kernel`` and the shared :class:`TranslationPlane` rows
for the pool (DESIGN.md §2.3) — binary search issues O(W log N) tests
and amortizes translation across all of them.
"""

from __future__ import annotations

from typing import List

from ...errors import BudgetExceededError, EvictionSetError
from .primitives import EvictionTester
from .types import AlgorithmStats, EvsetConfig


class BinarySearchPruning:
    """The paper's BinS pruner."""

    def __init__(self) -> None:
        self.name = "bins"
        self.wants_parallel = True

    def prune(
        self,
        tester: EvictionTester,
        target_va: int,
        candidates: List[int],
        cfg: EvsetConfig,
        deadline: int,
        stats: AlgorithmStats,
    ) -> List[int]:
        addrs = list(candidates)
        n_total = len(addrs)
        w = tester.ways
        if n_total < w:
            raise EvictionSetError("candidate set smaller than associativity")
        machine = tester.ctx.machine
        stride = max(w, int(n_total * cfg.backtrack_stride_frac))
        backtracks = 0

        # Establish the loop invariant: the first UB addresses evict T_a.
        ub = n_total
        stats.tests += 1
        if not tester.test(target_va, addrs, ub):
            raise EvictionSetError("full candidate set does not evict the target")

        for i in range(1, w + 1):
            while True:
                lb = i - 1
                hi = ub
                while hi - lb != 1:
                    if machine.now > deadline:
                        raise BudgetExceededError("binary search ran out of budget")
                    n = (lb + hi) // 2
                    stats.tests += 1
                    if tester.test(target_va, addrs, n):
                        hi = n
                    else:
                        lb = n
                tau = hi
                # Guard against noise: the converged prefix must really evict.
                stats.tests += 1
                if tester.test(target_va, addrs, tau):
                    break
                backtracks += 1
                stats.backtracks += 1
                if backtracks > cfg.max_backtracks:
                    raise EvictionSetError("binary search exceeded backtrack limit")
                # Recover: grow UB by a large stride until the prefix evicts.
                recovered = False
                grow = tau
                while grow < n_total:
                    grow = min(n_total, grow + stride)
                    if machine.now > deadline:
                        raise BudgetExceededError("binary search ran out of budget")
                    stats.tests += 1
                    if tester.test(target_va, addrs, grow):
                        ub = grow
                        recovered = True
                        break
                if not recovered:
                    raise EvictionSetError(
                        "binary search could not re-establish the invariant"
                    )
            # addrs[tau-1] is congruent; park it at the front of the prefix.
            addrs[i - 1], addrs[tau - 1] = addrs[tau - 1], addrs[i - 1]
            # UB needs no reset: the swap keeps W congruent addresses inside
            # the first tau entries (Section 5.2).
            ub = max(tau, i + 1)

        evset = addrs[:w]
        stats.tests += 1
        if not tester.test(target_va, evset):
            raise EvictionSetError("binary search result failed verification")
        return evset
