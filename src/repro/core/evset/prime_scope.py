"""Prime+Scope address pruning (Algorithm 2; Purnal et al. + Appendix A).

Prime+Scope scans the candidate list sequentially: prime the target, access
one candidate, and immediately check whether the target is still cached.
The first candidate whose access evicts the target is congruent.  Because
the check happens after *every* candidate access, the traversal cannot use
memory-level parallelism — Prime+Scope is inherently tied to the slow
sequential ``TestEviction``, which is exactly why it collapses under cloud
noise (Section 4.3).

**PsOp** (Appendix A): after each congruent address is found, candidates
from the back of the list are recharged to a near-front position, keeping
congruent density near the scan head.

Because the scan is sequential, Prime+Scope only gets the *translation*
half of the kernel layer: flushes and address geometry come from the
shared :class:`TranslationPlane` rows, while the accesses themselves stay
on the unfused pointer-chase path (DESIGN.md §2.3).
"""

from __future__ import annotations

from typing import List

from ...errors import BudgetExceededError, EvictionSetError
from .primitives import EvictionTester
from .types import AlgorithmStats, EvsetConfig


class PrimeScope:
    """Prime+Scope pruner; ``recharging=True`` selects PsOp."""

    def __init__(self, recharging: bool = False) -> None:
        self.recharging = recharging
        self.name = "psop" if recharging else "ps"
        #: Prime+Scope's design is incompatible with parallel TestEviction.
        self.wants_parallel = False

    def prune(
        self,
        tester: EvictionTester,
        target_va: int,
        candidates: List[int],
        cfg: EvsetConfig,
        deadline: int,
        stats: AlgorithmStats,
    ) -> List[int]:
        work = list(candidates)
        w = tester.ways
        if len(work) < w:
            raise EvictionSetError("candidate set smaller than associativity")
        ctx = tester.ctx
        machine = ctx.machine
        evset: List[int] = []

        def reprime() -> None:
            # Prime+Scope's defining trick: make the target the eviction
            # candidate.  Load the target first, then the already-found
            # congruent members, so the target is the oldest line in the
            # set and the *next* congruent insertion evicts exactly it.
            tester.prime_target(target_va)
            if evset:
                tester.traverse(evset)

        reprime()
        idx = 0
        passes = 0
        max_passes = 4 * w
        while len(evset) < w:
            if idx >= len(work):
                # End of the list: restart the scan (the search "is repeated
                # until W different congruent addresses are identified").
                # Early passes find few members because resident congruent
                # lines shield the target; re-scanning touches them and
                # exposes the target again — the depletion effect PsOp's
                # recharging mitigates.
                passes += 1
                if passes >= max_passes:
                    raise EvictionSetError("Prime+Scope exhausted its scan passes")
                idx = 0
                reprime()
            if machine.now > deadline:
                raise BudgetExceededError("Prime+Scope ran out of budget")
            candidate = work[idx]
            # One sequential candidate access in the tested structure...
            tester.traverse([candidate])
            stats.tests += 1
            # ...followed immediately by the scope check on the target.
            if tester.check_evicted(target_va):
                evset.append(candidate)
                work.pop(idx)
                if self.recharging and len(work) > 4 * w:
                    # Recharge the scan head with candidates from the back.
                    recharge = min(2 * w, len(work) - idx - 1)
                    for _ in range(recharge):
                        work.insert(min(idx + 1, len(work)), work.pop())
                reprime()
            else:
                idx += 1
        # Verify the assembled set with a (parallel) end-to-end test.
        stats.tests += 1
        verifier = EvictionTester(
            ctx, mode=tester.mode, parallel=True, repeats=tester.repeats
        )
        if not verifier.test(target_va, evset):
            raise EvictionSetError("Prime+Scope result failed verification")
        tester.n_tests += verifier.n_tests
        tester.traversed_addresses += verifier.traversed_addresses
        return evset
