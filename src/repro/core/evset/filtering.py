"""L2-driven candidate address filtering (Section 5.1).

The L2 set-index bits are a subset of the LLC/SF set-index bits, so two
addresses that are not congruent in the L2 cannot be congruent in the
LLC/SF.  Filtering therefore: (1) builds an L2 eviction set for the target,
(2) keeps only candidates that the L2 eviction set evicts.  The filtered
set is ~U_L2 times smaller, shrinking every downstream TestEviction — the
single biggest lever against cloud noise.

Section 5.3.1's reuse tricks are here too: the filtered groups at page
offset 0 can be *shifted* by a small delta to obtain filtered groups at any
other page offset (L2 congruence is preserved under same-page shifts).

Filtering is the heaviest ``test_many`` caller — one L2 eviction set
tested against hundreds of candidates — so it is the main beneficiary of
the fused ``test_many_kernel`` (DESIGN.md §2.3), which translates the
traversal once and reuses the plane rows for every per-candidate
prime/traverse/reload cycle.
"""

from __future__ import annotations

from typing import List, Optional

from ...errors import BudgetExceededError, EvictionSetError
from ..context import AttackerContext
from .binary_search import BinarySearchPruning
from .candidates import build_candidate_set, candidate_set_size
from .primitives import EvictionTester
from .types import AlgorithmStats, EvictionSet, EvsetConfig


def build_l2_eviction_set(
    ctx: AttackerContext,
    target_va: int,
    cfg: EvsetConfig = EvsetConfig(budget_ms=100.0),
    candidates: Optional[List[int]] = None,
) -> EvictionSet:
    """Construct a minimal L2 eviction set for ``target_va``.

    Uses the binary-search pruner in L2 mode (any pruner works; this is the
    fastest).  Allocates its own candidate set unless one is supplied.
    """
    if candidates is None:
        size = candidate_set_size(ctx.machine.cfg, target="l2", scale=cfg.candidate_scale)
        candidates = build_candidate_set(
            ctx, target_va % ctx.machine.cfg.page_bytes, size=size
        ).vas
    tester = EvictionTester(ctx, mode="l2", parallel=True, repeats=cfg.traversal_repeats)
    stats = AlgorithmStats()
    deadline = ctx.machine.now + cfg.budget_cycles(ctx.machine.cfg.clock_ghz)
    pruner = BinarySearchPruning()
    last_error: Optional[Exception] = None
    for _ in range(cfg.max_attempts):
        try:
            vas = pruner.prune(tester, target_va, candidates, cfg, deadline, stats)
            return EvictionSet(kind="l2", vas=vas, target_va=target_va)
        except BudgetExceededError as exc:
            raise EvictionSetError("L2 eviction set construction timed out") from exc
        except EvictionSetError as exc:
            last_error = exc
            ctx.rng.shuffle(candidates)
    raise EvictionSetError("could not build an L2 eviction set") from last_error


def filter_candidates(
    ctx: AttackerContext,
    l2_evset: EvictionSet,
    candidate_vas: List[int],
) -> List[int]:
    """Keep only the candidates the L2 eviction set can evict.

    For each candidate: prime it privately, traverse the L2 eviction set,
    and time a reload — eviction means the candidate shares the target's L2
    set, so it *may* share its LLC/SF set; survival proves it cannot.
    """
    tester = EvictionTester(ctx, mode="l2", parallel=True)
    verdicts = tester.test_many(candidate_vas, l2_evset.vas)
    return [va for va, evicted in zip(candidate_vas, verdicts) if evicted]


def shift_candidates(filtered_vas: List[int], delta: int, page_bytes: int = 4096) -> List[int]:
    """Derive a filtered candidate set at page offset ``base + delta``.

    Valid because adding a small (same-page) delta to two L2-congruent
    addresses keeps them L2-congruent (Section 5.3.1).  Raises if any shift
    would cross a page boundary.
    """
    shifted = []
    for va in filtered_vas:
        if (va % page_bytes) + delta >= page_bytes or (va % page_bytes) + delta < 0:
            raise EvictionSetError("delta would cross a page boundary")
        shifted.append(va + delta)
    return shifted
