"""Construction driver: attempts, budgets, verification, SF extension.

Implements the experimental protocol of Section 4.2 — up to
``max_attempts`` construction attempts within a per-set time budget — and
the two-phase SF construction used by all algorithms: first build a minimal
*LLC* eviction set out of shared lines, then extend it with one more
congruent address tested through the *SF* (private lines), since the SF has
one more way than the LLC on Skylake-SP.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...errors import BudgetExceededError, EvictionSetError
from ..context import AttackerContext
from .binary_search import BinarySearchPruning
from .group_testing import GroupTesting
from .ppp import PrimePruneProbe
from .prime_scope import PrimeScope
from .primitives import EvictionTester
from .types import AlgorithmStats, BuildOutcome, EvictionSet, EvsetConfig

#: Registry of pruning algorithms by their paper names.
_ALGORITHMS = {
    "gt": lambda: GroupTesting(early_termination=True),
    "gtop": lambda: GroupTesting(early_termination=False),
    "gt-song": lambda: GroupTesting(random_withhold=True),
    "ps": lambda: PrimeScope(recharging=False),
    "psop": lambda: PrimeScope(recharging=True),
    "bins": lambda: BinarySearchPruning(),
    "ppp": lambda: PrimePruneProbe(),
}


def algorithm_names() -> List[str]:
    return sorted(_ALGORITHMS)


def make_algorithm(name: str):
    """Instantiate a pruning algorithm by name (gt, gtop, gt-song, ps, psop, bins)."""
    try:
        return _ALGORITHMS[name]()
    except KeyError:
        raise EvictionSetError(
            f"unknown algorithm {name!r}; choose from {algorithm_names()}"
        ) from None


def _find_sf_extension(
    ctx: AttackerContext,
    llc_vas: Sequence[int],
    target_va: int,
    pool: Sequence[int],
    deadline: int,
    stats: AlgorithmStats,
) -> int:
    """Find one more congruent address to grow an LLC set into an SF set.

    Tests each pool address through the SF: the 11 LLC-set members plus a
    congruent 12th fill the 12-way SF set and push out the target.
    """
    tester = EvictionTester(ctx, mode="sf", parallel=True)
    base = list(llc_vas)
    for va in pool:
        if ctx.machine.now > deadline:
            raise BudgetExceededError("SF extension ran out of budget")
        stats.tests += 1
        if tester.test(target_va, base + [va]):
            # Guard against a noise-induced false positive with a retest.
            stats.tests += 1
            if tester.test(target_va, base + [va]):
                return va
    raise EvictionSetError("no SF extension address found in the pool")


def construct_sf_evset(
    ctx: AttackerContext,
    algorithm,
    target_va: int,
    candidate_vas: Sequence[int],
    cfg: EvsetConfig = EvsetConfig(),
    deadline: Optional[int] = None,
) -> BuildOutcome:
    """Construct one SF eviction set for ``target_va``.

    ``algorithm`` is a pruner instance (see :func:`make_algorithm`) or name.
    Returns a :class:`BuildOutcome`; never raises for ordinary failure.
    """
    if isinstance(algorithm, str):
        algorithm = make_algorithm(algorithm)
    machine = ctx.machine
    start = machine.now
    if deadline is None:
        deadline = start + cfg.budget_cycles(machine.cfg.clock_ghz)
    stats = AlgorithmStats()
    pool = [va for va in candidate_vas if va != target_va]
    reason = "exhausted attempts"
    # The two-phase LLC->SF protocol assumes the SF has exactly one more
    # way than the LLC *for this attacker's traffic*.  A way-partitioned
    # machine (duck-typed `effective_ways` on the SF) breaks that: the
    # attacker's SF partition and the shared-traffic LLC partition have
    # unrelated way budgets.  Pruning still has to run through the LLC —
    # the filtered groups put every candidate in one L2 set, so a
    # direct-SF prefix test self-evicts the target from the private L2
    # and reads "evicted" regardless of the SF state.  Instead each LLC
    # pass yields `effective_ways(SHARED)` congruent addresses, and the
    # passes repeat on the remaining pool until the attacker's SF way
    # budget is covered (every small SF-mode verification stays under the
    # L2 associativity, so it remains reliable).
    partitioned = hasattr(machine.hierarchy.sf, "effective_ways")
    for attempt in range(cfg.max_attempts):
        stats.attempts = attempt + 1
        if machine.now > deadline:
            reason = "budget exceeded"
            break
        tester = EvictionTester(
            ctx, mode="llc",
            parallel=algorithm.wants_parallel,
            repeats=cfg.traversal_repeats,
        )
        try:
            pruned = algorithm.prune(tester, target_va, pool, cfg, deadline, stats)
            if partitioned:
                sf_ways = machine.hierarchy.sf.effective_ways(ctx.main_core)
                collected = list(pruned)
                subpool = [va for va in pool if va not in set(collected)]
                while len(collected) < sf_ways:
                    extra = algorithm.prune(
                        tester, target_va, subpool, cfg, deadline, stats
                    )
                    collected.extend(extra)
                    subpool = [va for va in subpool if va not in set(extra)]
                evset_vas = collected[:sf_ways]
            else:
                members = set(pruned)
                # Shuffle the extension pool: pruning consumes the congruent
                # addresses from a position-biased region of the list (e.g.
                # binary search takes exactly those before the last tipping
                # point), which would leave a long congruent-free prefix.
                ext_pool = [va for va in pool if va not in members]
                ctx.rng.shuffle(ext_pool)
                extra = _find_sf_extension(
                    ctx, pruned, target_va, ext_pool, deadline, stats,
                )
                evset_vas = list(pruned) + [extra]
        except BudgetExceededError:
            reason = "budget exceeded"
            break
        except EvictionSetError as exc:
            reason = str(exc)
            ctx.rng.shuffle(pool)
            continue
        finally:
            stats.traversed_addresses += tester.traversed_addresses
        sf_tester = EvictionTester(ctx, mode="sf", parallel=True)
        stats.tests += 3
        if sf_tester.is_eviction_set(target_va, evset_vas, votes=3):
            return BuildOutcome(
                success=True,
                evset=EvictionSet(kind="sf", vas=evset_vas, target_va=target_va),
                elapsed_cycles=machine.now - start,
                stats=stats,
            )
        reason = "final SF verification failed"
        ctx.rng.shuffle(pool)
    return BuildOutcome(
        success=False,
        evset=None,
        elapsed_cycles=machine.now - start,
        stats=stats,
        failure_reason=reason,
    )


def construct_l2_evset(
    ctx: AttackerContext,
    algorithm,
    target_va: int,
    candidate_vas: Sequence[int],
    cfg: EvsetConfig = EvsetConfig(budget_ms=100.0),
) -> BuildOutcome:
    """Construct one L2 eviction set (used by Section 5.3.2's comparison)."""
    if isinstance(algorithm, str):
        algorithm = make_algorithm(algorithm)
    machine = ctx.machine
    start = machine.now
    deadline = start + cfg.budget_cycles(machine.cfg.clock_ghz)
    stats = AlgorithmStats()
    pool = [va for va in candidate_vas if va != target_va]
    reason = "exhausted attempts"
    for attempt in range(cfg.max_attempts):
        stats.attempts = attempt + 1
        if machine.now > deadline:
            reason = "budget exceeded"
            break
        tester = EvictionTester(
            ctx, mode="l2", parallel=algorithm.wants_parallel,
            repeats=cfg.traversal_repeats,
        )
        try:
            vas = algorithm.prune(tester, target_va, pool, cfg, deadline, stats)
        except BudgetExceededError:
            reason = "budget exceeded"
            break
        except EvictionSetError as exc:
            reason = str(exc)
            ctx.rng.shuffle(pool)
            continue
        finally:
            stats.traversed_addresses += tester.traversed_addresses
        return BuildOutcome(
            success=True,
            evset=EvictionSet(kind="l2", vas=vas, target_va=target_va),
            elapsed_cycles=machine.now - start,
            stats=stats,
        )
    return BuildOutcome(
        success=False, evset=None, elapsed_cycles=machine.now - start,
        stats=stats, failure_reason=reason,
    )
