"""Candidate-set construction (Section 2.2.1, step 1).

A candidate for a target cache set at page offset ``o`` is any address with
page offset ``o`` — the attacker controls nothing else.  Each candidate
lives on its own physical page (distinct frame), so candidates are i.i.d.
uniform over the U possible cache sets at that offset.  Empirically the
paper finds N = 3*U*W candidates suffice for Skylake-SP's LLC/SF.
"""

from __future__ import annotations

import math

from ...errors import ConfigurationError
from ..context import AttackerContext
from .types import CandidateSet


def candidate_set_size(machine_cfg, target: str = "sf", scale: float = 3.0) -> int:
    """N = ceil(scale * U * W) for the given target structure."""
    if target in ("sf", "llc"):
        u = machine_cfg.u_llc
        w = machine_cfg.sf.ways if target == "sf" else machine_cfg.llc.ways
    elif target == "l2":
        u = machine_cfg.u_l2
        w = machine_cfg.l2.ways
    else:
        raise ConfigurationError(f"unknown target structure {target!r}")
    return int(math.ceil(scale * u * w))


def build_candidate_set(
    ctx: AttackerContext,
    page_offset: int,
    size: int = None,
    target: str = "sf",
    scale: float = 3.0,
) -> CandidateSet:
    """Allocate a candidate set for cache sets at ``page_offset``.

    Candidates are shuffled so list position carries no information about
    physical placement.
    """
    if size is None:
        size = candidate_set_size(ctx.machine.cfg, target=target, scale=scale)
    if not 0 <= page_offset < ctx.machine.cfg.page_bytes:
        raise ConfigurationError("page offset out of range")
    if page_offset % 64:
        raise ConfigurationError("page offset must be line-aligned")
    pages = ctx.alloc_pages(size)
    vas = [p + page_offset for p in pages]
    ctx.rng.shuffle(vas)
    # Warm the translation plane eagerly: the whole pool is about to be
    # traversed hundreds of times by group testing, and translation is a
    # pure function of the (now established) page mapping.
    ctx.prepare(vas)
    return CandidateSet(page_offset=page_offset, vas=vas)
