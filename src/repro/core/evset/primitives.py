"""The ``TestEviction`` primitive (Section 4.1).

``TestEviction(T_a, addrs, n)``: prime the target, access the first ``n``
candidates, and time a reload of the target to decide whether it was
evicted.  Three target structures are supported, each with the state
manipulation and latency threshold that makes the verdict observable:

* ``"llc"`` — the target and candidates are made *shared* (helper-thread
  shadowing turns lines S, so they reside in the LLC).  Eviction of the
  target from the LLC also invalidates its private copies (the directory
  entry goes away), so a reload from DRAM vs. an LLC hit is the signal.
* ``"sf"`` — the target and candidates are *stored* (RFO makes them
  private/E, tracked by the SF).  Evicting the target's SF entry
  back-invalidates its private copies; the reload leaves the private
  caches, which the private-hit threshold detects.
* ``"l2"`` — plain private loads; eviction from the L2 sends the line to
  the LLC (victim cache) or DRAM, either way past the private threshold.

The *parallel* form traverses candidates with overlapped accesses (MLP),
making the test an order of magnitude faster — and therefore far less
exposed to background noise — than the *sequential* (pointer-chase) form.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...errors import ConfigurationError
from ...memsys import kernels as kernelmod
from ...memsys import lanes as lanesmod
from ...memsys.hierarchy import SHARED_OWNER
from ..context import AttackerContext


class EvictionTester:
    """Bound ``TestEviction`` primitive for one target structure.

    Args:
        ctx: Attacker context.
        mode: ``"llc"``, ``"sf"``, or ``"l2"``.
        parallel: Use overlapped traversal (True) or pointer-chase (False).
        repeats: Traversals per test (1 suffices under LRU-like policies).
        use_kernels: Route parallel tests through the fused attack
            kernels (DESIGN.md §2.3) when the machine's data plane
            supports them.  False forces the unfused path — the parity
            baseline the kernel suite diffs against.
    """

    def __init__(
        self,
        ctx: AttackerContext,
        mode: str = "llc",
        parallel: bool = True,
        repeats: int = 1,
        use_kernels: bool = True,
    ) -> None:
        if mode not in ("llc", "sf", "l2"):
            raise ConfigurationError(f"unknown TestEviction mode {mode!r}")
        self.ctx = ctx
        self.mode = mode
        self.parallel = parallel
        self.repeats = max(1, repeats)
        self.use_kernels = use_kernels
        cfg = ctx.machine.cfg
        self.ways = {"llc": cfg.llc.ways, "sf": cfg.sf.ways, "l2": cfg.l2.ways}[mode]
        # Partition-aware dynamic associativity: a way-partitioned shared
        # cache exposes `effective_ways(owner)` (duck-typed; absent on the
        # plain data plane).  The contention domain differs by mode — llc
        # traversals make lines *shared* (they land in the shared-traffic
        # partition), sf traversals *store* from the main core (they land
        # in the attacker's own partition) — so the tester sizes sets for
        # the domain's real associativity instead of the config total.
        hier = ctx.machine.hierarchy
        if mode == "llc":
            probe = getattr(hier.llc, "effective_ways", None)
            if probe is not None:
                self.ways = probe(SHARED_OWNER)
        elif mode == "sf":
            probe = getattr(hier.sf, "effective_ways", None)
            if probe is not None:
                self.ways = probe(ctx.main_core)
        self.n_tests = 0
        self.traversed_addresses = 0

    def _kernels(self):
        """The engaged kernel bundle, or None for the unfused path.

        Prefers the lane-specialized bundle when NumPy is available and
        lanes are enabled; otherwise the plain PR-3 kernels.
        """
        if not (self.use_kernels and kernelmod.KERNELS_ENABLED):
            return None
        if lanesmod.LANES_ENABLED and lanesmod.HAVE_NUMPY:
            lanes = self.ctx.lane_kernels()
            if lanes.engaged():
                return lanes
        kernels = self.ctx.attack_kernels()
        return kernels if kernels.engaged() else None

    # -- State manipulation ------------------------------------------------------

    def prime_target(self, target_va: int) -> None:
        """Bring the target into the tested structure, freshly MRU.

        The target is flushed first: a plain reload can be a private-cache
        hit that never refreshes the target's LLC/L2 replacement state,
        leaving it eviction-preferred and poisoning the test with false
        positives.  The flush+reload makes the installed state
        deterministic, and the target is the attacker's own line, so
        clflush is always available.  (Stores carry their own RFO, so the
        SF mode needs no flush.)
        """
        self._prime_line(self.ctx.line(target_va))

    def _prime_line(self, tline: int) -> None:
        """:meth:`prime_target` on a pre-translated line (batched callers)."""
        machine = self.ctx.machine
        if self.mode == "llc":
            machine.flush(tline)
            machine.access(self.ctx.main_core, tline)
            machine.access(self.ctx.helper_core, tline, advance=False)
        elif self.mode == "sf":
            machine.access(self.ctx.main_core, tline, write=True)
        else:
            machine.flush(tline)
            machine.access(self.ctx.main_core, tline)

    def traverse(self, vas: Sequence[int], n: Optional[int] = None) -> None:
        """Flush then access the first ``n`` candidates in this mode's state.

        The flush is essential on a non-inclusive hierarchy: a candidate
        still resident in the attacker's private caches (or, shared, in
        both the L2 and the LLC) is a cache *hit* and exerts no insertion
        pressure on the tested structure — small candidate prefixes would
        silently stop testing anything.  Flushing first makes every
        candidate contribute exactly one insertion.
        """
        count = len(vas) if n is None else min(n, len(vas))
        kernels = self._kernels()
        if kernels is not None:
            rows = self.ctx.rows(vas)
            if self.parallel:
                kernels.traverse_kernel(self.mode, rows, count, self.repeats)
            else:
                # Pointer-chase traversal (Prime+Scope): the chase itself
                # stays unfused, but the flush and translation do not.
                self._chase_rows(kernels, rows, count)
            self.traversed_addresses += count * self.repeats
            return
        lines = self.ctx.lines(vas if count == len(vas) else vas[:count])
        self._traverse_lines(lines)

    def _chase_rows(self, kernels, rows, count: int) -> None:
        """Fused-flush + sequential chase (the non-parallel traversal)."""
        ctx = self.ctx
        machine = ctx.machine
        lines = rows.lines if count == len(rows.lines) else rows.lines[:count]
        write = self.mode == "sf"
        kernels.flush_rows(rows, count)
        shadow = ctx.helper_core if self.mode == "llc" else None
        for _ in range(self.repeats):
            machine.access_chase(ctx.main_core, lines, write=write, shadow_core=shadow)

    def _traverse_lines(self, lines: Sequence[int]) -> None:
        """Flush then access pre-translated candidate lines (see traverse)."""
        ctx = self.ctx
        machine = ctx.machine
        write = self.mode == "sf"
        machine.flush_batch(lines)
        shadow = ctx.helper_core if self.mode == "llc" else None
        for _ in range(self.repeats):
            if self.parallel:
                machine.access_batch(
                    ctx.main_core, lines, write=write, shadow_core=shadow
                )
            else:
                machine.access_chase(
                    ctx.main_core, lines, write=write, shadow_core=shadow
                )
        self.traversed_addresses += len(lines) * self.repeats

    @property
    def threshold(self) -> int:
        return (
            self.ctx.threshold_llc if self.mode == "llc" else self.ctx.threshold_private
        )

    def check_evicted(self, target_va: int) -> bool:
        """Timed reload of the target; True if it left the structure."""
        return self.ctx.timed_load(target_va) > self.threshold

    # -- The primitive -------------------------------------------------------------

    def test(self, target_va: int, vas: Sequence[int], n: Optional[int] = None) -> bool:
        """TestEviction: do the first ``n`` candidates evict the target?"""
        self.n_tests += 1
        count = len(vas) if n is None else min(n, len(vas))
        kernels = self._kernels()
        if kernels is not None and self.parallel:
            verdict = kernels.test_eviction_kernel(
                self.mode,
                self.ctx.line(target_va),
                self.ctx.rows(vas),
                count,
                self.repeats,
                self.threshold,
            )
            self.traversed_addresses += count * self.repeats
            return verdict
        self.prime_target(target_va)
        self.traverse(vas, n)
        return self.check_evicted(target_va)

    def test_many(
        self, target_vas: Sequence[int], vas: Sequence[int], n: Optional[int] = None
    ) -> List[bool]:
        """TestEviction of each target against one fixed candidate list.

        The batched form of calling :meth:`test` in a loop: the candidate
        traversal is translated once and reused for every target, and the
        per-target prime and verdict reload run on pre-translated lines
        through the Machine directly (the big win in candidate filtering,
        where the same L2 eviction set is tested against hundreds of
        candidates).
        """
        count = len(vas) if n is None else min(n, len(vas))
        targets = len(target_vas)
        line = self.ctx.line
        tlines = [line(va) for va in target_vas]
        kernels = self._kernels()
        if kernels is not None and self.parallel:
            self.n_tests += targets
            verdicts = kernels.test_many_kernel(
                self.mode, tlines, self.ctx.rows(vas), count, self.repeats,
                self.threshold,
            )
            self.traversed_addresses += count * self.repeats * targets
            return verdicts
        machine = self.ctx.machine
        main_core = self.ctx.main_core
        threshold = self.threshold
        lines = self.ctx.lines(vas if count == len(vas) else vas[:count])
        verdicts: List[bool] = []
        for tline in tlines:
            self.n_tests += 1
            self._prime_line(tline)
            self._traverse_lines(lines)
            verdicts.append(machine.timed_access(main_core, tline) > threshold)
        return verdicts

    def is_eviction_set(self, target_va: int, vas: Sequence[int], votes: int = 1) -> bool:
        """Verify a (small) set evicts the target; majority over ``votes``."""
        positive = 0
        for _ in range(votes):
            if self.test(target_va, vas):
                positive += 1
        return positive * 2 > votes


def deadline_exceeded(ctx: AttackerContext, deadline: int) -> bool:
    """Whether the simulated clock has passed the construction deadline."""
    return ctx.machine.now > deadline
