"""Prime+Prune+Probe address pruning (Purnal et al. [70]; Section 8).

PPP exploits LRU-like replacement to find congruent addresses with very
few memory accesses — it was designed to defeat *randomized* caches,
where minimizing accesses is essential:

1. **Prime**: access a chunk of candidates.
2. **Prune**: re-access the chunk, timing each line; lines that miss were
   evicted by the chunk's own self-conflicts — drop them and repeat until
   the whole chunk hits (it now co-resides in the cache).
3. **Probe**: access the target; its insertion evicts exactly one of the
   co-resident pruned lines (the LRU of the target's set); a timed sweep
   identifies that line — which is congruent by construction.

The found line replaces the target's slot pressure, so repeating the
probe step yields further congruent lines.  The paper's Section 8 notes
(via the CTPP evaluation) that PPP's success rate collapses with even a
tenth of Cloud Run's background activity — pruning gives noise a long
window to fake evictions — which the ablation benchmark reproduces.
"""

from __future__ import annotations

from typing import List

from ...errors import BudgetExceededError, EvictionSetError
from .primitives import EvictionTester
from .types import AlgorithmStats, EvsetConfig


class PrimePruneProbe:
    """PPP pruner (LLC/shared mode like the other algorithms here)."""

    def __init__(self, chunk_scale: int = 2) -> None:
        self.name = "ppp"
        self.wants_parallel = True
        #: Chunk size = chunk_scale * U * ways: pruning only bites when a
        #: chunk brings *self-conflict* to the target's set (more congruent
        #: lines than ways), so chunks must be capacity-scale.  (On the
        #: randomized caches PPP was designed for, U is effectively 1 and
        #: chunks are small — here the page-offset uncertainty inflates
        #: them, one reason PPP is a poor fit for this setting.)
        self.chunk_scale = chunk_scale

    def _prune_chunk(
        self, tester: EvictionTester, chunk: List[int], stats: AlgorithmStats
    ) -> List[int]:
        """Prime then prune a chunk until it co-resides (all hits)."""
        ctx = tester.ctx
        threshold = tester.threshold
        survivors = list(chunk)
        # The timed sweep itself refetches missing lines (displacing other
        # survivors), so exact stabilization is unreachable; a few rounds
        # get within a small churn band, which is all the probe step needs.
        for _ in range(8):
            tester.traverse(survivors)
            stats.tests += 1
            missing = []
            # Sweep in reverse traversal order: a missing line's timed load
            # refetches it and evicts its set's LRU — which in reverse
            # order is a line that was already going to read as missing,
            # not a still-unswept resident.
            for va in reversed(survivors):
                if ctx.timed_load(va) > threshold:
                    missing.append(va)
            if len(missing) <= max(1, len(survivors) // 50):
                break
            gone = set(missing)
            survivors = [va for va in survivors if va not in gone]
            if not survivors:
                break
        return survivors

    def prune(
        self,
        tester: EvictionTester,
        target_va: int,
        candidates: List[int],
        cfg: EvsetConfig,
        deadline: int,
        stats: AlgorithmStats,
    ) -> List[int]:
        ctx = tester.ctx
        machine = ctx.machine
        w = tester.ways
        if len(candidates) < w:
            raise EvictionSetError("candidate set smaller than associativity")
        threshold = tester.threshold
        mcfg = machine.cfg
        uncertainty = mcfg.u_l2 if tester.mode == "l2" else mcfg.u_llc
        chunk_size = min(len(candidates), self.chunk_scale * uncertainty * w)
        evset: List[int] = []
        pool = list(candidates)
        cursor = 0
        while len(evset) < w:
            if machine.now > deadline:
                raise BudgetExceededError("PPP ran out of budget")
            if cursor >= len(pool):
                raise EvictionSetError("PPP exhausted the candidate list")
            chunk = evset + pool[cursor : cursor + chunk_size]
            cursor += chunk_size
            resident = list(chunk)
            # Probe: the target's insertion evicts one co-resident line of
            # its own set; find it with a timed sweep.  Sweep refetches
            # churn co-residency, so when the probe stops finding lines we
            # re-stabilize (re-prune) the survivors and try again.
            for _ in range(4):
                if machine.now > deadline:
                    raise BudgetExceededError("PPP ran out of budget")
                resident = self._prune_chunk(tester, resident, stats)
                found_any = True
                while len(evset) < w and found_any:
                    tester.prime_target(target_va)
                    stats.tests += 1
                    found_any = False
                    still = []
                    members = set(evset)
                    for va in reversed(resident):
                        if va in members:
                            continue
                        if ctx.timed_load(va) > threshold:
                            if len(evset) < w:  # keep the result minimal
                                evset.append(va)
                                found_any = True
                        else:
                            still.append(va)
                    resident = evset + still[::-1]
                if len(evset) >= w:
                    break
        stats.tests += 1
        verifier = EvictionTester(
            ctx, mode=tester.mode, parallel=True, repeats=tester.repeats
        )
        if not verifier.test(target_va, evset):
            raise EvictionSetError("PPP result failed verification")
        tester.n_tests += verifier.n_tests
        tester.traversed_addresses += verifier.traversed_addresses
        return evset
