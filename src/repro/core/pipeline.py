"""The end-to-end attack: Steps 1-3 glued together (Section 7.3).

Given a machine shared with a running ECDSA victim, the pipeline:

1. builds eviction sets for every SF set at the target page offset
   (Step 1: candidate filtering + binary-search pruning),
2. identifies the victim's target set with the PSD scanner (Step 2),
3. monitors the target set across several signings and extracts nonce
   bits from each trace (Step 3),

and reports the paper's metrics: per-phase times, fraction of nonce bits
recovered per signing, and bit error rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .._util import mean, median
from ..errors import ScanError
from ..victim.ecdsa_victim import EcdsaVictim, SigningGroundTruth
from .context import AttackerContext
from .evset import EvsetConfig, bulk_construct_page_offset
from .evset.types import EvictionSet
from .extraction import (
    ExtractedBit,
    ExtractionConfig,
    ExtractionScore,
    HeuristicBoundaryClassifier,
    bits_look_unbiased,
    extract_bits,
    score_extraction,
)
from .monitor import ParallelProbing, monitor_set
from .scanner import Scanner, ScannerConfig, TargetSetClassifier
from .traces import AccessTrace


@dataclass(frozen=True)
class AttackConfig:
    """End-to-end attack parameters (PageOffset scenario by default)."""

    algorithm: str = "bins"
    evset: EvsetConfig = field(default_factory=lambda: EvsetConfig(budget_ms=100.0))
    scanner: ScannerConfig = field(default_factory=ScannerConfig)
    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    scan_timeout_s: float = 60.0
    #: Number of signing traces to collect after finding the target set.
    n_traces: int = 10
    #: Segmentation: a gap this many iterations long splits trace segments.
    segment_gap_iters: float = 4.0


@dataclass
class AttackReport:
    """Everything the paper reports for the end-to-end attack."""

    target_identified: bool
    evset_build_cycles: int = 0
    scan_cycles: int = 0
    collect_cycles: int = 0
    n_evsets: int = 0
    sets_scanned: int = 0
    scores: List[ExtractionScore] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.evset_build_cycles + self.scan_cycles + self.collect_cycles

    def total_seconds(self, clock_ghz: float) -> float:
        return self.total_cycles / (clock_ghz * 1e9)

    @property
    def mean_recovered_fraction(self) -> float:
        return mean([s.recovered_fraction for s in self.scores])

    @property
    def median_recovered_fraction(self) -> float:
        return median([s.recovered_fraction for s in self.scores])

    @property
    def mean_bit_error_rate(self) -> float:
        scored = [s for s in self.scores if s.n_recovered]
        return mean([s.bit_error_rate for s in scored])


def segment_trace(
    trace: AccessTrace, iter_cycles: int, gap_iters: float = 4.0, min_accesses: int = 8
) -> List[AccessTrace]:
    """Split a long monitoring trace into activity bursts (signings).

    The attacker has no ground truth at this point: segments are separated
    by gaps much longer than a ladder iteration and must contain enough
    accesses to plausibly be a signing.
    """
    times = sorted(trace.timestamps)
    if not times:
        return []
    gap_limit = int(iter_cycles * gap_iters)
    segments: List[List[int]] = [[times[0]]]
    for t in times[1:]:
        if t - segments[-1][-1] > gap_limit:
            segments.append([t])
        else:
            segments[-1].append(t)
    out = []
    for seg in segments:
        if len(seg) >= min_accesses:
            out.append(
                AccessTrace(
                    timestamps=seg,
                    start=seg[0] - iter_cycles,
                    end=seg[-1] + iter_cycles,
                    target_va=trace.target_va,
                )
            )
    return out


def make_extraction_validator(
    boundary_classifier, cfg: AttackConfig
):
    """Scanner validator: a positive trace must yield plausible nonce bits.

    This is the paper's WholeSys false-positive rejection: traces from
    MAdd/MDouble sets have victim-like PSDs but do not decode into a
    reasonable, unbiased bit stream.
    """

    def validate(trace: AccessTrace) -> bool:
        boundaries = boundary_classifier.predict_boundaries(trace)
        bits = extract_bits(trace, boundaries, cfg.extraction)
        return bits_look_unbiased(bits)

    return validate


def collect_signing_traces(
    ctx: AttackerContext,
    victim: EcdsaVictim,
    evset: EvictionSet,
    cfg: AttackConfig,
) -> List[AccessTrace]:
    """Monitor the target set until ``n_traces`` signings are captured."""
    machine = ctx.machine
    iter_cycles = cfg.extraction.iter_cycles
    signing_cycles = iter_cycles * (victim.curve.nonce_bits + 4)
    session_cycles = int(signing_cycles / victim.cfg.duty_cycle)
    segments: List[AccessTrace] = []
    # Collect in session-sized windows until enough signings are seen.
    min_accesses = victim.curve.nonce_bits // 3
    for _ in range(cfg.n_traces * 6):
        monitor = ParallelProbing(ctx, evset)
        window = monitor_set(monitor, session_cycles)
        segments.extend(
            seg
            for seg in segment_trace(window, iter_cycles, cfg.segment_gap_iters)
            if seg.access_count() >= min_accesses
        )
        if len(segments) >= cfg.n_traces:
            break
    return segments[: cfg.n_traces]


def score_against_truth(
    traces: Sequence[AccessTrace],
    truths: Sequence[SigningGroundTruth],
    boundary_classifier,
    cfg: AttackConfig,
) -> List[ExtractionScore]:
    """Extract bits and score them per ground-truth signing.

    Monitoring dropouts fragment one signing into several trace segments,
    so all extracted bits from every segment overlapping a signing are
    pooled before matching against that signing's iterations
    (validation-only use of the instrumentation).
    """
    per_truth: List[List[ExtractedBit]] = [[] for _ in truths]
    covered = [False] * len(truths)
    for trace in traces:
        boundaries = boundary_classifier.predict_boundaries(trace)
        bits = extract_bits(trace, boundaries, cfg.extraction)
        for i, truth in enumerate(truths):
            if truth.start < trace.end and trace.start < truth.end:
                per_truth[i].extend(bits)
                covered[i] = True
    return [
        score_extraction(truths[i], per_truth[i], cfg.extraction)
        for i in range(len(truths))
        if covered[i]
    ]


def run_end_to_end(
    ctx: AttackerContext,
    victim: EcdsaVictim,
    classifier: TargetSetClassifier,
    cfg: AttackConfig = AttackConfig(),
    boundary_classifier=None,
    evsets: Optional[List[EvictionSet]] = None,
    use_validator: bool = False,
) -> AttackReport:
    """Run Steps 1-3 against a victim already running on the machine.

    ``classifier`` must be pre-trained (Section 7.2 trains it offline on
    traces from controlled victims).  ``evsets`` can inject pre-built
    eviction sets to skip Step 1 (for experiments isolating later steps).
    """
    machine = ctx.machine
    report = AttackReport(target_identified=False)
    if boundary_classifier is None:
        boundary_classifier = HeuristicBoundaryClassifier(cfg.extraction)

    # Step 1: eviction sets for all SF sets at the target page offset.
    t0 = machine.now
    if evsets is None:
        bulk = bulk_construct_page_offset(
            ctx, cfg.algorithm, victim.layout.target_page_offset, cfg.evset
        )
        evsets = bulk.evsets
    report.n_evsets = len(evsets)
    report.evset_build_cycles = machine.now - t0
    if not evsets:
        return report

    # Step 2: find the target set with the PSD scanner.
    validator = (
        make_extraction_validator(boundary_classifier, cfg) if use_validator else None
    )
    scanner = Scanner(ctx, classifier, cfg.scanner, validator=validator)
    t0 = machine.now
    result = scanner.scan(evsets, timeout_s=cfg.scan_timeout_s)
    report.scan_cycles = machine.now - t0
    report.sets_scanned = result.sets_scanned
    if not result.found:
        return report
    report.target_identified = True

    # Step 3: collect signing traces and extract the nonce bits.
    t0 = machine.now
    traces = collect_signing_traces(ctx, victim, result.evset, cfg)
    report.collect_cycles = machine.now - t0
    report.scores = score_against_truth(
        traces, victim.truths, boundary_classifier, cfg
    )
    return report
