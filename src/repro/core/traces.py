"""Access-trace data structures (the attacker's observations).

An :class:`AccessTrace` is the output of monitoring one cache set for a
window of time: the timestamps (cycles) at which the monitor detected an
access to the set, plus bookkeeping for the window and the monitored
eviction set.  Everything downstream — PSD scanning (Section 6.2) and
nonce extraction (Section 7.3) — consumes traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ReproError


@dataclass
class AccessTrace:
    """Detected accesses to one monitored cache set over a time window."""

    #: Detection timestamps, cycles, ascending.
    timestamps: List[int]
    #: Window bounds (cycles).
    start: int
    end: int
    #: The monitored eviction set's target address (attacker bookkeeping).
    target_va: Optional[int] = None
    #: Probe latencies observed (for Table 5-style statistics).
    probe_latencies: List[int] = field(default_factory=list)
    #: Prime latencies observed.
    prime_latencies: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ReproError("trace window must have positive length")

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def duration(self) -> int:
        return self.end - self.start

    def duration_us(self, clock_ghz: float) -> float:
        return self.duration / (clock_ghz * 1e3)

    def access_count(self) -> int:
        return len(self.timestamps)

    def inter_access_gaps(self) -> np.ndarray:
        """Gaps between consecutive detections (cycles)."""
        if len(self.timestamps) < 2:
            return np.empty(0, dtype=float)
        return np.diff(np.asarray(self.timestamps, dtype=float))

    def relative_timestamps(self) -> np.ndarray:
        """Timestamps shifted to start at 0."""
        return np.asarray(self.timestamps, dtype=float) - self.start

    def slice(self, start: int, end: int) -> "AccessTrace":
        """Sub-window view (timestamps copied)."""
        return AccessTrace(
            timestamps=[t for t in self.timestamps if start <= t < end],
            start=start,
            end=end,
            target_va=self.target_va,
        )
