"""Nonce-bit extraction from access traces (Section 7.3).

The monitored line is fetched at every ladder-iteration boundary, and
again at the iteration midpoint when the bit is 0 (the instrumented
victim's layout).  Extraction therefore needs two steps:

1. Decide which detected accesses are *iteration boundaries* — the paper
   trains a random forest for this; a gap-chaining heuristic is provided
   as an alternative and for bootstrapping.
2. For every pair of neighboring boundaries at a plausible iteration
   distance (the paper keeps 8k-12k cycle pairs), read the bit: 0 if an
   extra access sits near the midpoint, 1 otherwise.

Scoring against the victim's ground truth yields the paper's metrics:
fraction of nonce bits recovered and bit error rate among them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExtractionError, NotTrainedError
from ..ml import RandomForestClassifier
from ..victim.ecdsa_victim import SigningGroundTruth
from .traces import AccessTrace


@dataclass(frozen=True)
class ExtractionConfig:
    """Extraction knobs; defaults mirror the paper's victim timing."""

    #: Expected ladder-iteration duration (cycles); the attacker knows this
    #: from the public binary (~9,700 cycles at 2 GHz on Cloud Run).
    iter_cycles: int = 9700
    #: Boundary pairs are kept when their spacing is within these fractions
    #: of the expected duration (the paper's 8k-12k cycle filter).
    pair_lo: float = 0.82
    pair_hi: float = 1.24
    #: Midpoint window (fractions of the iteration) searched for the
    #: extra access that signals a 0 bit.
    mid_lo: float = 0.3
    mid_hi: float = 0.7
    #: Tolerance (cycles) when matching predicted boundaries to ground
    #: truth for scoring.
    match_tolerance: int = 1500


@dataclass(frozen=True)
class ExtractedBit:
    """One recovered nonce bit with its iteration window."""

    start: int
    end: int
    bit: int


def _gap_features(times: np.ndarray, idx: int, iter_cycles: float) -> List[float]:
    """Per-access features: neighborhood gaps normalized by the period."""
    def gap(a: int, b: int) -> float:
        if a < 0 or b >= len(times):
            return 4.0  # sentinel: no neighbor
        return min(4.0, (times[b] - times[a]) / iter_cycles)

    i = idx
    return [
        gap(i - 2, i - 1),
        gap(i - 1, i),
        gap(i, i + 1),
        gap(i + 1, i + 2),
        gap(i - 1, i + 1),
        # Phase evidence: how close the forward/backward gaps are to one
        # full period or half a period.
        abs(gap(i, i + 1) - 1.0),
        abs(gap(i, i + 1) - 0.5),
        abs(gap(i - 1, i) - 1.0),
        abs(gap(i - 1, i) - 0.5),
    ]


class HeuristicBoundaryClassifier:
    """Sequence-decoding boundary detector (no training required).

    The monitored line produces one access per iteration *boundary* plus a
    *midpoint* access for 0 bits; dropouts and noise accesses are mixed in.
    Looking at one access in isolation cannot separate the boundary phase
    from the midpoint phase (both repeat with the same period), so this
    classifier runs a small Viterbi-style dynamic program over the whole
    trace with two states per access — Boundary (B) and Mid (M) — and
    phase-consistent transitions:

    * B -> B at one iteration (a 1-bit, or a 0-bit whose mid was missed),
    * B -> M and M -> B at half an iteration (a detected 0-bit),
    * M -> M at one iteration (consecutive 0-bits with the boundary
      between them missed),
    * B -> B at two iterations (one whole boundary missed).

    Mid-phase labelings score lower than the true phase whenever the nonce
    has 1 bits, so the decode locks onto the boundary phase and stays
    there through dropouts instead of drifting like a greedy chain.
    """

    #: (state_from, state_to, gap_center_iters, gap_tol_iters, score)
    _TRANSITIONS = (
        ("B", "B", 1.0, 0.21, 2.0),
        ("B", "M", 0.5, 0.17, 1.6),
        ("M", "B", 0.5, 0.17, 1.6),
        ("M", "M", 1.0, 0.16, 0.8),
        ("B", "B", 2.0, 0.25, 0.7),
    )

    def __init__(self, cfg: ExtractionConfig = ExtractionConfig()) -> None:
        self.cfg = cfg

    def predict_labels(self, trace: AccessTrace) -> List[Tuple[int, str]]:
        """Label each plausibly-victim access as boundary or mid."""
        times = sorted(trace.timestamps)
        if len(times) < 3:
            return []
        iter_cycles = float(self.cfg.iter_cycles)
        max_gap = 2.4 * iter_cycles
        n = len(times)
        states = ("B", "M")
        neg = float("-inf")
        # dp[i][s]: best score of a decode ending at access i in state s.
        dp = [[0.0 if s == "B" else -0.5 for s in states] for _ in range(n)]
        back: List[List[Optional[Tuple[int, int]]]] = [
            [None, None] for _ in range(n)
        ]
        sidx = {"B": 0, "M": 1}
        # Rolling best decode among accesses far enough in the past that no
        # normal transition reaches them — lets the path restart after a
        # monitoring dropout instead of abandoning everything before it.
        jump_best: Optional[Tuple[float, int, int]] = None
        jump_ptr = 0
        for i in range(n):
            t = times[i]
            while jump_ptr < i and t - times[jump_ptr] > max_gap:
                for s in (0, 1):
                    if jump_best is None or dp[jump_ptr][s] > jump_best[0]:
                        jump_best = (dp[jump_ptr][s], jump_ptr, s)
                jump_ptr += 1
            if jump_best is not None and jump_best[0] > dp[i][0]:
                dp[i][0] = jump_best[0]
                back[i][0] = (jump_best[1], jump_best[2])
            j = i - 1
            while j >= 0 and t - times[j] <= max_gap:
                gap_iters = (t - times[j]) / iter_cycles
                for s_from, s_to, center, tol, score in self._TRANSITIONS:
                    dev = abs(gap_iters - center)
                    if dev <= tol:
                        # Prefer gap-accurate paths: a noise access slightly
                        # off-phase must lose to the true periodic chain.
                        weighted = score * (1.0 - 0.6 * (dev / tol) ** 2)
                        cand = dp[j][sidx[s_from]] + weighted
                        if cand > dp[i][sidx[s_to]]:
                            dp[i][sidx[s_to]] = cand
                            back[i][sidx[s_to]] = (j, sidx[s_from])
                j -= 1
        # Backtrack from the globally best endpoint.
        best_i, best_s = 0, 0
        best = neg
        for i in range(n):
            for s in (0, 1):
                if dp[i][s] > best:
                    best, best_i, best_s = dp[i][s], i, s
        labels: List[Tuple[int, str]] = []
        pos: Optional[Tuple[int, int]] = (best_i, best_s)
        while pos is not None:
            i, s = pos
            labels.append((times[i], states[s]))
            pos = back[i][s]
        return list(reversed(labels))

    def predict_boundaries(self, trace: AccessTrace) -> List[int]:
        return [t for t, s in self.predict_labels(trace) if s == "B"]


#: Descriptive alias: the heuristic is a Viterbi-style sequence decode.
ViterbiBoundaryClassifier = HeuristicBoundaryClassifier


class ForestBoundaryClassifier:
    """The paper's random-forest boundary classifier.

    Trained on ground-truth-instrumented traces: each detected access is
    labelled as boundary/non-boundary by proximity to a true iteration
    boundary; features are the access's local gap neighborhood.
    """

    def __init__(
        self,
        cfg: ExtractionConfig = ExtractionConfig(),
        forest: Optional[RandomForestClassifier] = None,
    ) -> None:
        self.cfg = cfg
        self.forest = forest if forest is not None else RandomForestClassifier(
            n_estimators=25, max_depth=10, seed=7
        )
        self._fitted = False

    # -- Training -----------------------------------------------------------

    def _label_accesses(
        self, trace: AccessTrace, truth: SigningGroundTruth
    ) -> Tuple[np.ndarray, np.ndarray]:
        times = np.asarray(sorted(trace.timestamps))
        boundaries = np.asarray(truth.boundaries)
        feats = []
        labels = []
        tol = self.cfg.match_tolerance
        for i, t in enumerate(times):
            if not truth.start - tol <= t <= truth.end + tol:
                continue
            feats.append(_gap_features(times, i, self.cfg.iter_cycles))
            nearest = np.min(np.abs(boundaries - t))
            labels.append(1 if nearest <= tol else 0)
        return np.asarray(feats), np.asarray(labels)

    def fit(
        self,
        traces: Sequence[AccessTrace],
        truths: Sequence[SigningGroundTruth],
    ) -> "ForestBoundaryClassifier":
        xs, ys = [], []
        for trace, truth in zip(traces, truths):
            x, y = self._label_accesses(trace, truth)
            if len(x):
                xs.append(x)
                ys.append(y)
        if not xs:
            raise ExtractionError("no labelled accesses to train on")
        self.forest.fit(np.vstack(xs), np.concatenate(ys))
        self._fitted = True
        return self

    # -- Inference ------------------------------------------------------------

    def predict_boundaries(self, trace: AccessTrace) -> List[int]:
        if not self._fitted:
            raise NotTrainedError("ForestBoundaryClassifier used before fit()")
        times = sorted(trace.timestamps)
        if len(times) < 3:
            return []
        feats = np.asarray(
            [_gap_features(np.asarray(times), i, self.cfg.iter_cycles)
             for i in range(len(times))]
        )
        preds = self.forest.predict(feats)
        return [t for t, p in zip(times, preds) if p == 1]


def extract_bits(
    trace: AccessTrace,
    boundaries: Sequence[int],
    cfg: ExtractionConfig = ExtractionConfig(),
) -> List[ExtractedBit]:
    """Read nonce bits from boundary pairs (Section 7.3's final step).

    Only neighboring-boundary pairs at a plausible iteration distance are
    used; the bit is 0 when an extra access falls near the midpoint
    (instrumented layout), else 1.
    """
    times = sorted(trace.timestamps)
    out: List[ExtractedBit] = []
    lo = cfg.iter_cycles * cfg.pair_lo
    hi = cfg.iter_cycles * cfg.pair_hi
    for a, b in zip(boundaries, boundaries[1:]):
        span = b - a
        if not lo <= span <= hi:
            continue
        m_lo = a + span * cfg.mid_lo
        m_hi = a + span * cfg.mid_hi
        has_mid = any(m_lo <= t <= m_hi for t in times)
        out.append(ExtractedBit(start=a, end=b, bit=0 if has_mid else 1))
    return out


@dataclass(frozen=True)
class ExtractionScore:
    """Paper metrics for one signing trace."""

    n_true_bits: int
    n_recovered: int
    n_errors: int

    @property
    def recovered_fraction(self) -> float:
        return self.n_recovered / self.n_true_bits if self.n_true_bits else 0.0

    @property
    def bit_error_rate(self) -> float:
        return self.n_errors / self.n_recovered if self.n_recovered else 0.0


def score_extraction(
    truth: SigningGroundTruth,
    extracted: Sequence[ExtractedBit],
    cfg: ExtractionConfig = ExtractionConfig(),
) -> ExtractionScore:
    """Match extracted windows to ground-truth iterations and count errors."""
    tol = cfg.match_tolerance
    recovered = 0
    errors = 0
    used = [False] * len(extracted)
    for j, bit in enumerate(truth.bits):
        t_start = truth.boundaries[j]
        t_end = truth.boundaries[j + 1]
        for k, ext in enumerate(extracted):
            if used[k]:
                continue
            if abs(ext.start - t_start) <= tol and abs(ext.end - t_end) <= tol:
                used[k] = True
                recovered += 1
                if ext.bit != bit:
                    errors += 1
                break
    return ExtractionScore(
        n_true_bits=len(truth.bits), n_recovered=recovered, n_errors=errors
    )


def bits_look_unbiased(
    extracted: Sequence[ExtractedBit], lo: float = 0.15, hi: float = 0.85,
    min_bits: int = 12,
) -> bool:
    """The WholeSys false-positive filter: enough bits, not heavily biased."""
    if len(extracted) < min_bits:
        return False
    ones = sum(e.bit for e in extracted) / len(extracted)
    return lo <= ones <= hi
