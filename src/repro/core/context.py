"""The attacker's runtime context.

Bundles everything the attack code needs: the attacker container's address
space on the shared machine, its two pinned cores (main + helper thread, as
deployed in Section 4.2), VA->line translation memoization, latency
thresholds calibrated from timed loads, and the traversal primitives
(parallel / pointer-chase, private / shared / store) that every higher
level builds on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .._util import make_rng, median, spawn_rng
from ..config import LINE_BYTES, LINES_PER_PAGE, PAGE_BYTES
from ..errors import ConfigurationError
from ..memsys import batchplane
from ..memsys.kernels import AttackKernels, PlaneRows, TranslationPlane
from ..memsys.lanes import LaneKernels
from ..memsys.machine import Machine
from ..memsys.vec import VecKernels


class AttackerContext:
    """Attacker-side view of a simulated machine.

    Args:
        machine: The shared host.
        main_core / helper_core: The attacker's two pinned cores.  The
            helper thread shadows the main thread's accesses to turn lines
            shared (S state -> LLC resident), as in the paper.
        seed: Seed for attacker-local randomness (address shuffling).
    """

    def __init__(
        self,
        machine: Machine,
        main_core: int = 0,
        helper_core: int = 1,
        seed: int = 0,
    ) -> None:
        if main_core == helper_core:
            raise ConfigurationError("main and helper must be different cores")
        for core in (main_core, helper_core):
            if not 0 <= core < machine.cfg.cores:
                raise ConfigurationError(f"core {core} out of range")
        self.machine = machine
        self.main_core = main_core
        self.helper_core = helper_core
        self.rng = make_rng(("attacker", seed))
        self.aspace = machine.new_address_space(va_base=0x20_0000_0000)
        self._lines: Dict[int, int] = {}
        self._lines_memo: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        self._plane = TranslationPlane(machine.hierarchy, self.line)
        self._kernels: Optional[AttackKernels] = None
        self._lane_kernels: Optional[LaneKernels] = None
        self._pool: List[int] = []  # unused mapped pages
        # Thresholds start from the architectural defaults; calibrate()
        # replaces them with measured values.
        self.threshold_private = machine.hit_threshold_private()
        self.threshold_llc = machine.hit_threshold_llc()

    # -- Memory management -----------------------------------------------------

    def alloc_pages(self, count: int) -> List[int]:
        """Map ``count`` pages (drawing from a pre-mapped pool if available)."""
        take = min(count, len(self._pool))
        pages = self._pool[:take]
        del self._pool[:take]
        if count > take:
            pages.extend(self.aspace.alloc_pages(count - take))
        return pages

    def release_pages(self, pages: Sequence[int]) -> None:
        """Return pages to the pool for reuse by later candidate sets."""
        self._pool.extend(pages)

    def line(self, va: int) -> int:
        """Physical line address of ``va`` (memoized translation)."""
        lines = self._lines
        pline = lines.get(va)
        if pline is None:
            pline = self.aspace.translate_line(va)
            lines[va] = pline
        return pline

    def lines(self, vas: Sequence[int]) -> Tuple[int, ...]:
        """Translate a candidate tuple (memoized per tuple).

        The same pool is traversed hundreds of times per construction;
        memoizing whole tuples (on top of the per-VA memo) makes the
        repeat translations one dict probe.  Short tuples are not worth
        the key build; the bound mirrors ``TranslationPlane._MEMO_CAP``.
        """
        key = vas if type(vas) is tuple else tuple(vas)
        memo = self._lines_memo
        out = memo.get(key)
        if out is None:
            line = self.line
            out = tuple([line(va) for va in key])
            if len(key) > 2:
                if len(memo) >= 512:
                    memo.clear()
                memo[key] = out
        return out

    def rows(self, vas: Sequence[int]) -> PlaneRows:
        """Precomputed address geometry for a candidate tuple (kernels)."""
        return self._plane.rows(vas)

    def prepare(self, vas: Sequence[int]) -> None:
        """Eagerly warm the translation plane for a candidate pool."""
        self._plane.warm(vas)

    def attack_kernels(self) -> AttackKernels:
        """The fused kernel bundle bound to this context (lazy singleton)."""
        kernels = self._kernels
        if kernels is None:
            kernels = self._kernels = AttackKernels(
                self.machine, self._plane, self.main_core, self.helper_core
            )
        return kernels

    def lane_kernels(self) -> LaneKernels:
        """The lane-specialized kernel bundle (lazy singleton).

        Inside a :class:`repro.memsys.batchplane.BatchSession` lane
        thread this resolves to a session-bound
        :class:`~repro.memsys.batchplane.BatchLaneKernels` instead, so
        the trial's planned operations rendezvous with its batch.  The
        context must be used on the thread that first called this (the
        batch executor creates one context per trial per lane thread).

        On counter-RNG machines the standalone bundle upgrades to
        :class:`~repro.memsys.vec.VecKernels` — identical results, with
        monitor rounds memo-replayed (legal only under the event-keyed
        draw contract; see DESIGN.md).
        """
        kernels = self._lane_kernels
        if kernels is None:
            slot = batchplane.current_slot()
            if slot is not None:
                kernels = batchplane.BatchLaneKernels(
                    self.machine, self._plane, self.main_core,
                    self.helper_core, slot=slot,
                )
            elif getattr(self.machine.hierarchy, "crng", None) is not None:
                kernels = VecKernels(
                    self.machine, self._plane, self.main_core,
                    self.helper_core,
                )
            else:
                kernels = LaneKernels(
                    self.machine, self._plane, self.main_core,
                    self.helper_core,
                )
            self._lane_kernels = kernels
        return kernels

    def invalidate_translations(self) -> None:
        """Drop all cached VA->line/geometry state (address-space change)."""
        self._lines.clear()
        self._lines_memo.clear()
        self._plane.invalidate()
        if self._lane_kernels is not None:
            self._lane_kernels.invalidate_plans()

    # -- Ground-truth inspection (experiment harness only, not attack logic) ----

    def true_set_of(self, va: int) -> int:
        """Ground-truth shared (LLC/SF) set index of an attacker VA."""
        return self.machine.hierarchy.shared_set_index(self.line(va))

    def true_l2_set_of(self, va: int) -> int:
        return self.machine.hierarchy.l2_index(self.line(va))

    # -- Single-line operations ---------------------------------------------------

    def load(self, va: int) -> None:
        """Plain load on the main core."""
        self.machine.access(self.main_core, self.line(va))

    def store(self, va: int) -> None:
        """Store (RFO) on the main core: forces the line exclusive."""
        self.machine.access(self.main_core, self.line(va), write=True)

    def load_shared(self, va: int) -> None:
        """Make a line shared: main-core load shadowed by the helper thread.

        The helper's access runs concurrently and does not advance the clock.
        """
        line = self.line(va)
        self.machine.access(self.main_core, line)
        self.machine.access(self.helper_core, line, advance=False)

    def flush(self, va: int) -> None:
        self.machine.flush(self.line(va))

    def flush_batch(self, vas: Sequence[int], n: Optional[int] = None) -> int:
        """Pipelined clflush of the first ``n`` addresses; returns cycles."""
        chosen = vas if n is None else vas[:n]
        return self.machine.flush_batch([self.line(va) for va in chosen])

    def timed_load(self, va: int) -> int:
        """Timed load on the main core; returns measured cycles."""
        return self.machine.timed_access(self.main_core, self.line(va))

    # -- Traversals ----------------------------------------------------------------

    def traverse_parallel(
        self, vas: Sequence[int], n: Optional[int] = None, shared: bool = False,
        write: bool = False, same_set: bool = False,
    ) -> int:
        """Overlapped traversal of the first ``n`` addresses.

        ``shared=True`` interleaves a helper-core shadow access per line (the
        helper runs concurrently; only main-core progress advances time).
        ``same_set=True`` asserts all addresses are congruent (an eviction
        set) so background noise is reconciled once per batch.
        Returns elapsed cycles.
        """
        lines = self.lines(vas if n is None else vas[:n])
        if not shared:
            return self.machine.access_batch(
                self.main_core, lines, write=write, same_shared_set=same_set
            )
        return self.machine.access_batch(
            self.main_core, lines, shadow_core=self.helper_core
        )

    def traverse_chase(
        self, vas: Sequence[int], n: Optional[int] = None, shared: bool = False,
        write: bool = False,
    ) -> int:
        """Serialized pointer-chase traversal of the first ``n`` addresses."""
        lines = self.lines(vas if n is None else vas[:n])
        return self.machine.access_chase(
            self.main_core,
            lines,
            write=write,
            shadow_core=self.helper_core if shared else None,
        )

    def probe_parallel(
        self, vas: Sequence[int], n: Optional[int] = None, write: bool = False,
        same_set: bool = False,
    ) -> int:
        """Timed overlapped traversal, as a Prime+Probe probe measures it.

        Same cost model as :meth:`traverse_parallel` plus the fixed timer
        overhead (see :meth:`Machine.probe_batch`).
        """
        lines = self.lines(vas if n is None else vas[:n])
        return self.machine.probe_batch(
            self.main_core, lines, write=write, same_shared_set=same_set
        )

    # -- Threshold calibration --------------------------------------------------------

    def calibrate(self, samples: int = 30) -> None:
        """Measure hit/LLC/DRAM latencies and derive decision thresholds.

        Mirrors what a real attacker does on an unknown host: time loads in
        states it can force (fresh DRAM fetch, repeat private hit, and a
        cross-core transfer through the SF, whose latency matches an LLC
        hit) and place thresholds at the midpoints.
        """
        page = self.alloc_pages(1)[0]
        va = page
        t_dram, t_hit, t_llc = [], [], []
        for _ in range(samples):
            self.flush(va)
            t_dram.append(self.timed_load(va))
            t_hit.append(self.timed_load(va))
            self.flush(va)
            self.machine.access(self.helper_core, self.line(va))
            t_llc.append(self.timed_load(va))
        self.release_pages([page])
        dram = median(t_dram)
        hit = median(t_hit)
        llc = median(t_llc)
        if not hit < llc < dram:
            raise ConfigurationError(
                f"calibration failed: hit={hit}, llc={llc}, dram={dram}"
            )
        self.threshold_private = int((hit + llc) / 2)
        self.threshold_llc = int((llc + dram) / 2)
