"""Target-set identification with power spectral density (Sections 6.2, 7.2).

The attacker holds eviction sets for every candidate SF set (Step 1) and
must find which one the victim's secret-dependent code touches (Step 2).
For each candidate set it collects a short access trace while the victim
runs, estimates the trace's PSD with Welch's method, and asks a classifier
whether the spectrum shows the victim's expected periodicity (a peak near
clock / (iter_cycles/2), ~0.41 MHz on the paper's hosts).

Pipeline pieces:

* :class:`TargetSetClassifier` — PSD feature extraction + a
  polynomial-kernel SVM (the paper trains exactly this with scikit-learn;
  ours is :class:`repro.ml.SVC`).
* :func:`collect_labeled_traces` — training-data generation: monitor known
  target/non-target sets on a victim under the experimenter's control
  (the paper's ground-truth setup runs victim and attacker in one
  container and mmaps the victim binary).
* :class:`Scanner` — the scan loop: sweep candidate sets, pre-filter by
  access count, classify, optionally validate by trial nonce extraction
  (the WholeSys false-positive filter), until found or timeout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .._util import spawn_rng
from ..dsp import psd_feature_vector
from ..errors import NotTrainedError, ScanError
from ..ml import SVC, StandardScaler, evaluate_binary, poly_kernel
from .context import AttackerContext
from .evset.types import EvictionSet
from .monitor import ParallelProbing, monitor_set
from .traces import AccessTrace


@dataclass(frozen=True)
class ScannerConfig:
    """Scanner knobs (paper values scaled by the victim's configuration)."""

    #: Monitoring window per candidate set, microseconds (paper: 500).
    trace_us: float = 500.0
    #: Expected victim access period in cycles (attacker knows the binary:
    #: half a ladder iteration).
    expected_period_cycles: float = 4850.0
    #: Pre-filter: keep traces whose access count lies within these
    #: multiples of the expected full-activity count (paper: 50-400 counts
    #: for ~200 expected, i.e. 0.25x to 2x).
    count_lo_frac: float = 0.25
    count_hi_frac: float = 2.0
    #: Trace binning (cycles per sample) for the PSD.
    bin_cycles: int = 500
    #: Number of PSD feature bands.
    n_bands: int = 24

    def trace_cycles(self, clock_ghz: float) -> int:
        return int(self.trace_us * clock_ghz * 1e3)

    def count_bounds(self, clock_ghz: float) -> Tuple[int, int]:
        expected = self.trace_cycles(clock_ghz) / self.expected_period_cycles
        return (
            max(4, int(expected * self.count_lo_frac)),
            int(expected * self.count_hi_frac),
        )


class TargetSetClassifier:
    """PSD-feature SVM deciding whether a trace came from the target set."""

    def __init__(
        self,
        clock_hz: float,
        cfg: ScannerConfig = ScannerConfig(),
        svm: Optional[SVC] = None,
    ) -> None:
        self.clock_hz = clock_hz
        self.cfg = cfg
        self.scaler = StandardScaler()
        self.svm = svm if svm is not None else SVC(
            kernel=poly_kernel(degree=3, gamma=0.1, coef0=1.0), c=5.0
        )
        self._fitted = False

    def featurize(self, trace: AccessTrace) -> np.ndarray:
        return psd_feature_vector(
            trace.timestamps,
            trace.start,
            trace.end,
            bin_cycles=self.cfg.bin_cycles,
            clock_hz=self.clock_hz,
            n_bands=self.cfg.n_bands,
        )

    def fit(self, traces: Sequence[AccessTrace], labels: Sequence[int]) -> "TargetSetClassifier":
        x = np.array([self.featurize(t) for t in traces])
        y = np.asarray(labels)
        self.svm.fit(self.scaler.fit_transform(x), y)
        self._fitted = True
        return self

    def predict(self, trace: AccessTrace) -> bool:
        if not self._fitted:
            raise NotTrainedError("TargetSetClassifier used before fit()")
        x = self.scaler.transform([self.featurize(trace)])
        return bool(self.svm.predict(x)[0] == 1)

    def validate(self, traces: Sequence[AccessTrace], labels: Sequence[int]):
        """Confusion report on a held-out set (paper: FNR 1.02%, FPR 0.01%)."""
        preds = [1 if self.predict(t) else 0 for t in traces]
        return evaluate_binary(labels, preds, positive=1)


def collect_labeled_traces(
    ctx: AttackerContext,
    evsets: Sequence[EvictionSet],
    target_set_index: int,
    cfg: ScannerConfig,
    per_set: int = 3,
    positive_reps: Optional[int] = None,
) -> Tuple[List[AccessTrace], List[int]]:
    """Ground-truth training collection: monitor each set, label by truth.

    The victim must already be running on the machine.  Labels use the
    simulator's ground truth, standing in for the paper's controlled-victim
    setup where the attacker mmaps the victim binary to learn the true set.

    ``positive_reps`` oversamples the target set (default: ``per_set``).
    With one target among many sets, ``per_set`` windows of a ~25%-duty
    victim can easily all be idle, starving the positive class and
    collapsing the SVM to "always negative"; the paper's offline phase
    controls its victim and can balance classes freely, so so can we.
    """
    duration = cfg.trace_cycles(ctx.machine.cfg.clock_ghz)
    if positive_reps is None:
        positive_reps = per_set
    traces: List[AccessTrace] = []
    labels: List[int] = []
    for evset in evsets:
        label = 1 if ctx.true_set_of(evset.target_va) == target_set_index else 0
        for _ in range(positive_reps if label else per_set):
            monitor = ParallelProbing(ctx, evset)
            traces.append(monitor_set(monitor, duration))
            labels.append(label)
    return traces, labels


@dataclass
class ScanResult:
    """Outcome of one target-identification run."""

    found: bool
    evset: Optional[EvictionSet]
    trace: Optional[AccessTrace]
    elapsed_cycles: int
    sets_scanned: int
    sweeps: int

    def elapsed_seconds(self, clock_ghz: float) -> float:
        return self.elapsed_cycles / (clock_ghz * 1e9)

    def scan_rate_sets_per_s(self, clock_ghz: float) -> float:
        secs = self.elapsed_seconds(clock_ghz)
        return self.sets_scanned / secs if secs > 0 else 0.0


class Scanner:
    """The Step 2 scan loop.

    Sweeps the candidate eviction sets repeatedly (the victim is only in
    its vulnerable code ~25% of the time — the de-synchronization problem —
    so one sweep usually isn't enough), pre-filters traces by access count,
    classifies the survivors, and optionally validates positives with a
    trial extraction to reject MAdd/MDouble look-alikes (used for WholeSys).
    """

    def __init__(
        self,
        ctx: AttackerContext,
        classifier: TargetSetClassifier,
        cfg: ScannerConfig = ScannerConfig(),
        validator: Optional[Callable[[AccessTrace], bool]] = None,
    ) -> None:
        self.ctx = ctx
        self.classifier = classifier
        self.cfg = cfg
        self.validator = validator

    def scan(
        self,
        evsets: Sequence[EvictionSet],
        timeout_s: float = 60.0,
        order_rng: Optional[random.Random] = None,
    ) -> ScanResult:
        """Scan until the target set is identified or the timeout expires."""
        if not evsets:
            raise ScanError("no eviction sets to scan")
        machine = self.ctx.machine
        clock_ghz = machine.cfg.clock_ghz
        duration = self.cfg.trace_cycles(clock_ghz)
        lo, hi = self.cfg.count_bounds(clock_ghz)
        start = machine.now
        deadline = start + int(timeout_s * machine.clock_hz)
        order = list(evsets)
        rng = order_rng or spawn_rng(self.ctx.rng, "scan-order")
        sets_scanned = 0
        sweeps = 0
        while machine.now < deadline:
            sweeps += 1
            rng.shuffle(order)
            for evset in order:
                if machine.now >= deadline:
                    break
                monitor = ParallelProbing(self.ctx, evset)
                trace = monitor_set(monitor, duration)
                sets_scanned += 1
                if not lo <= trace.access_count() <= hi:
                    continue
                if not self.classifier.predict(trace):
                    continue
                if self.validator is not None and not self.validator(trace):
                    continue
                return ScanResult(
                    found=True,
                    evset=evset,
                    trace=trace,
                    elapsed_cycles=machine.now - start,
                    sets_scanned=sets_scanned,
                    sweeps=sweeps,
                )
        return ScanResult(
            found=False,
            evset=None,
            trace=None,
            elapsed_cycles=machine.now - start,
            sets_scanned=sets_scanned,
            sweeps=sweeps,
        )
