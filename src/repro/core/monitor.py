"""Prime+Probe monitoring strategies (Section 6.1, Table 5, Figure 6).

Monitoring a cache set means alternating *prime* (fill the set with the
attacker's lines) and *probe* (time accesses to those lines; a slow probe
means someone else inserted into the set).  The quality metric is time
resolution: both latencies must be short, and the prime must re-arm the
set quickly after each detection.

Strategies:

* :class:`ParallelProbing` — the paper's contribution: probe all W lines
  with overlapped accesses.  Slightly slower probe than Prime+Scope, but a
  trivially fast prime (a few overlapped store traversals) and no reliance
  on replacement state — it works whatever the policy is.
* :class:`PrimeScopeFlush` (PS-Flush) — probe only the designated eviction
  candidate (EVC); prime by load + clflush + sequential reload of the
  whole eviction set, which is slow (~6k cycles on the paper's hosts).
* :class:`PrimeScopeAlt` (PS-Alt) — probe the EVC; prime by an alternating
  pointer-chase over *two* eviction sets.  Faster than PS-Flush but
  fragile: background accesses perturb the replacement state it depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .._util import mean, stddev
from ..errors import ConfigurationError
from ..memsys import kernels as kernelmod
from ..memsys import lanes as lanesmod
from .context import AttackerContext
from .evset.types import EvictionSet
from .traces import AccessTrace

#: Latency samples above this many cycles are interrupt/context-switch
#: outliers and are excluded from latency statistics (Section 6.1).
OUTLIER_CYCLES = 20_000


class MonitorStrategy:
    """Base class: a prime/probe pair bound to one eviction set."""

    name = "base"

    def __init__(self, ctx: AttackerContext, evset: EvictionSet) -> None:
        if len(evset.vas) < 1:
            raise ConfigurationError("empty eviction set")
        self.ctx = ctx
        self.evset = evset
        # Translate once; the prime/probe loops then cross into the memory
        # system through the fused kernels (or the batched Machine APIs on
        # the unfused path) with no per-iteration VA->line work.
        self._rows = ctx.rows(evset.vas)
        self._lines = self._rows.lines
        self.prime_latencies: List[int] = []
        self.probe_latencies: List[int] = []

    def _kernels(self):
        """The engaged kernel bundle, or None for the unfused path.

        Prefers the lane-specialized bundle when NumPy is available and
        lanes are enabled; otherwise the plain PR-3 kernels.
        """
        if not kernelmod.KERNELS_ENABLED:
            return None
        if lanesmod.LANES_ENABLED and lanesmod.HAVE_NUMPY:
            lanes = self.ctx.lane_kernels()
            if lanes.engaged():
                return lanes
        kernels = self.ctx.attack_kernels()
        return kernels if kernels.engaged() else None

    # -- Strategy interface -------------------------------------------------

    def prime(self) -> int:
        """Re-arm the monitored set; returns elapsed cycles."""
        raise NotImplementedError

    def probe(self) -> bool:
        """One probe; True if an access to the set was detected."""
        raise NotImplementedError

    # -- Shared helpers ------------------------------------------------------

    def _record_prime(self, cycles: int) -> None:
        self.prime_latencies.append(cycles)

    def _record_probe(self, cycles: int) -> None:
        self.probe_latencies.append(cycles)

    def latency_summary(self) -> "LatencySummary":
        return LatencySummary.from_samples(
            self.name, self.prime_latencies, self.probe_latencies
        )


@dataclass(frozen=True)
class LatencySummary:
    """Mean/stddev prime and probe latencies (Table 5 format)."""

    strategy: str
    prime_mean: float
    prime_std: float
    probe_mean: float
    probe_std: float
    samples: int

    @staticmethod
    def from_samples(name: str, primes: List[int], probes: List[int]) -> "LatencySummary":
        p = [x for x in primes if x <= OUTLIER_CYCLES]
        q = [x for x in probes if x <= OUTLIER_CYCLES]
        return LatencySummary(
            strategy=name,
            prime_mean=mean(p),
            prime_std=stddev(p),
            probe_mean=mean(q),
            probe_std=stddev(q),
            samples=min(len(p), len(q)) if (p and q) else max(len(p), len(q)),
        )


class ParallelProbing(MonitorStrategy):
    """The paper's Parallel Probing (Section 6.1).

    Prime: a few overlapped store traversals of the W-line eviction set
    (stores force the lines private/SF-tracked with no replacement-state
    choreography).  Probe: one overlapped load traversal of all W lines; if
    every line is still a private-cache hit the batch is fast, while a
    single back-invalidated line drags the whole batch up by a DRAM/LLC
    round trip.
    """

    name = "parallel"

    def __init__(
        self,
        ctx: AttackerContext,
        evset: EvictionSet,
        prime_rounds: int = 2,
        llc_scrub_period: int = 128,
    ) -> None:
        super().__init__(ctx, evset)
        self.prime_rounds = prime_rounds
        self.llc_scrub_period = llc_scrub_period
        self._probes_since_scrub = 0
        lat = ctx.machine.cfg.latency
        # All-hit probe cost: worst private hit + per-line gaps + timer.
        w = len(evset.vas)
        self._detect_threshold = (
            lat.timer_overhead + lat.l2_hit + w * lat.hit_issue_gap + lat.llc_hit // 2
        )

    def _llc_scrub(self, kernels) -> None:
        """Evict stale copies from the *LLC* set that mirrors our SF set.

        A victim line whose back-invalidation landed in the LLC (reuse
        predictor) serves the victim from the LLC thereafter — invisible to
        SF priming.  Since an SF eviction set is also an LLC eviction set
        (more ways), periodically flushing our lines and re-loading them
        shared churns the LLC set and evicts any such stale copy.  This is
        attacker-local work; the scrub is excluded from detection.
        """
        ctx = self.ctx
        if kernels is not None:
            rows = self._rows
            kernels.flush_rows(rows, len(rows))
            kernels.load_sweep(rows, len(rows), shared=True)
            return
        machine = ctx.machine
        machine.flush_batch(self._lines)
        machine.access_batch(ctx.main_core, self._lines, shadow_core=ctx.helper_core)

    def prime(self) -> int:
        ctx = self.ctx
        kernels = self._kernels()
        if kernels is not None:
            rows = self._rows
            elapsed = kernels.prime_probe_kernel(
                rows, len(rows), prime_rounds=self.prime_rounds
            )
            self._record_prime(elapsed)
            return elapsed
        machine = ctx.machine
        elapsed = 0
        for _ in range(self.prime_rounds):
            elapsed += machine.access_batch(
                ctx.main_core, self._lines, write=True, same_shared_set=True
            )
        self._record_prime(elapsed)
        return elapsed

    def probe(self) -> bool:
        # Periodic maintenance runs in the probe path (a long quiet stretch
        # is exactly when a stale LLC copy may be starving detections).
        # Its cost is not recorded in the prime/probe latency statistics.
        ctx = self.ctx
        machine = ctx.machine
        kernels = self._kernels()
        self._probes_since_scrub += 1
        if self.llc_scrub_period and self._probes_since_scrub >= self.llc_scrub_period:
            self._probes_since_scrub = 0
            self._llc_scrub(kernels)
            if kernels is not None:
                kernels.prime_probe_kernel(
                    self._rows, len(self._rows), prime_rounds=self.prime_rounds
                )
            else:
                for _ in range(self.prime_rounds):
                    machine.access_batch(
                        ctx.main_core, self._lines, write=True, same_shared_set=True
                    )
        if kernels is not None:
            measured = kernels.prime_probe_kernel(
                self._rows, len(self._rows), probe=True
            )
        else:
            measured = machine.probe_batch(
                ctx.main_core, self._lines, same_shared_set=True
            )
        self._record_probe(measured)
        return measured > self._detect_threshold


class PrimeScopeFlush(MonitorStrategy):
    """PS-Flush: EVC probing with the load+flush+reload prime pattern.

    The sequential reload order makes the first-reloaded line the eviction
    candidate under an LRU-like policy; the probe times only that line.
    """

    name = "ps-flush"

    #: Prime repetitions allowed until the scope line survives priming
    #: (Prime+Scope primes until the pattern leaves a stable state; a
    #: concurrent insertion mid-pattern otherwise evicts the scope line
    #: or strands a foreign entry).
    MAX_PRIME_TRIES = 3

    def prime(self) -> int:
        ctx = self.ctx
        machine = ctx.machine
        lines = self._lines
        kernels = self._kernels()
        start = machine.now
        for _ in range(self.MAX_PRIME_TRIES):
            # Load everything, flush everything, then reload sequentially so
            # the replacement order is exactly the reload order (EVC = vas[0]).
            if kernels is not None:
                rows = self._rows
                kernels.load_sweep(rows, len(rows))
                kernels.flush_rows(rows, len(rows))
            else:
                machine.access_batch(ctx.main_core, lines)
                machine.flush_batch(lines)
            machine.access_chase(ctx.main_core, lines)
            # Stability check doubling as the L1 warm touch: if the scope
            # line did not survive the pattern (a concurrent insertion
            # displaced it), the state is dirty — re-prime.
            if ctx.timed_load(self.evset.vas[0]) <= ctx.threshold_private:
                break
        elapsed = machine.now - start
        self._record_prime(elapsed)
        return elapsed

    def probe(self) -> bool:
        measured = self.ctx.timed_load(self.evset.vas[0])
        self._record_probe(measured)
        return measured > self.ctx.threshold_private


class PrimeScopeAlt(MonitorStrategy):
    """PS-Alt: EVC probing primed by alternating chases of two eviction sets.

    Cheaper than PS-Flush (no flushes) but leans even harder on the
    replacement state: the interleaved chase is meant to leave
    ``evset.vas[0]`` as the eviction candidate, and any background
    insertion between prime and the victim's access breaks that promise.
    """

    name = "ps-alt"

    def __init__(
        self,
        ctx: AttackerContext,
        evset: EvictionSet,
        alternate: Optional[EvictionSet] = None,
    ) -> None:
        super().__init__(ctx, evset)
        if alternate is None:
            raise ConfigurationError("PS-Alt needs a second eviction set")
        self.alternate = alternate

    def prime(self) -> int:
        ctx = self.ctx
        start = ctx.machine.now
        # Alternating pointer-chase: a[0], b[0], a[1], b[1], ...  The probed
        # set's lines are inserted oldest-first so vas[0] ends up the EVC.
        a, b = self.evset.vas, self.alternate.vas
        inter: List[int] = []
        for i in range(max(len(a), len(b))):
            if i < len(a):
                inter.append(a[i])
            if i < len(b):
                inter.append(b[i])
        ctx.traverse_chase(inter)
        # Stability check doubling as the L1 warm touch (see
        # PrimeScopeFlush.prime).  Without a flush step this pattern cannot
        # displace a stranded foreign entry — the replacement-state
        # fragility the paper observes for PS-Alt — so one retry is all
        # that can help.
        if ctx.timed_load(a[0]) > ctx.threshold_private:
            ctx.traverse_chase(inter)
            ctx.load(a[0])
        elapsed = ctx.machine.now - start
        self._record_prime(elapsed)
        return elapsed

    def probe(self) -> bool:
        measured = self.ctx.timed_load(self.evset.vas[0])
        self._record_probe(measured)
        return measured > self.ctx.threshold_private


def make_monitor(
    name: str,
    ctx: AttackerContext,
    evset: EvictionSet,
    alternate: Optional[EvictionSet] = None,
) -> MonitorStrategy:
    """Monitor factory: ``parallel``, ``ps-flush``, or ``ps-alt``."""
    if name == "parallel":
        return ParallelProbing(ctx, evset)
    if name == "ps-flush":
        return PrimeScopeFlush(ctx, evset)
    if name == "ps-alt":
        return PrimeScopeAlt(ctx, evset, alternate=alternate)
    raise ConfigurationError(f"unknown monitor strategy {name!r}")


def monitor_set(
    monitor: MonitorStrategy,
    duration_cycles: int,
    max_events: Optional[int] = None,
    loop_overhead_cycles: int = 220,
    refresh_quiet_probes: int = 64,
) -> AccessTrace:
    """Run a prime/probe loop for a time window; returns the access trace.

    The loop primes once, then probes continuously; each detection is
    timestamped and followed by a re-prime.  Victim/noise events interleave
    through the machine's event queue as simulated time advances.

    ``loop_overhead_cycles`` models the attacker loop's own bookkeeping
    (timestamp recording, branch, buffer append) between probes.

    ``refresh_quiet_probes``: after this many probes with no detection the
    set is re-primed anyway.  Without the refresh a victim whose access was
    missed keeps its SF entry, so its *next* access hits privately and the
    channel silently dies — every practical Prime+Probe loop re-primes
    periodically to bound that staleness.
    """
    ctx = monitor.ctx
    machine = ctx.machine
    start = machine.now
    end = start + duration_cycles
    timestamps: List[int] = []
    quiet = 0
    monitor.prime()
    while machine.now < end:
        if loop_overhead_cycles:
            machine.advance(loop_overhead_cycles)
        if monitor.probe():
            quiet = 0
            timestamps.append(machine.now)
            monitor.prime()
            if max_events is not None and len(timestamps) >= max_events:
                break
        else:
            quiet += 1
            if refresh_quiet_probes and quiet >= refresh_quiet_probes:
                quiet = 0
                monitor.prime()
    return AccessTrace(
        timestamps=timestamps,
        start=start,
        end=machine.now,
        target_va=monitor.evset.target_va,
        probe_latencies=list(monitor.probe_latencies),
        prime_latencies=list(monitor.prime_latencies),
    )
