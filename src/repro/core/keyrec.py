"""Key recovery from *partially* extracted nonces (the full endgame).

The end-to-end attack recovers most — not all — bits of each signing's
nonce.  This module turns those partial extractions into the private key
via the Hidden Number Problem (:mod:`repro.crypto.hnp`), the route the
paper's references take:

1. For each captured signing, find the *contiguous leading run* of
   extracted bits (the attacker can verify contiguity from the window
   timestamps: consecutive iteration windows must abut).
2. The ladder's iteration count reveals the nonce's bit length, and the
   leading run plus the implicit top 1 bit give its most significant bits.
3. Signings whose leading run is long enough become HNP samples; with
   roughly ``key_bits / known_bits`` good samples, LLL hands back the key,
   verified against the victim's public key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..crypto.curves import BinaryCurve
from ..crypto.ecdsa import EcdsaSignature
from ..crypto.hnp import recover_private_key_hnp, sample_from_signature
from ..errors import CryptoError
from .extraction import ExtractedBit, ExtractionConfig


@dataclass
class SigningCapture:
    """Everything the attacker holds about one observed signing.

    The signature and message are public (the attacker requested the
    victim service); the extracted bits come from the cache trace.
    """

    message: bytes
    signature: EcdsaSignature
    extracted: List[ExtractedBit]
    #: Ladder iterations observed (= nonce bit length - 1); measured from
    #: the trace's boundary count or the signing duration.
    n_iterations: int


def leading_run(
    extracted: Sequence[ExtractedBit],
    cfg: ExtractionConfig,
    trace_start: Optional[int] = None,
) -> List[int]:
    """The contiguous run of bits from the start of the signing.

    A window belongs to the run if it starts where the previous one ended
    (within tolerance); the first window must sit at the trace's first
    activity if ``trace_start`` is given — otherwise it is trusted to be
    the ladder's first iteration.
    """
    ordered = sorted(extracted, key=lambda b: b.start)
    if not ordered:
        return []
    tol = cfg.match_tolerance
    if trace_start is not None and ordered[0].start - trace_start > tol:
        return []
    run = [ordered[0].bit]
    for prev, cur in zip(ordered, ordered[1:]):
        if abs(cur.start - prev.end) > tol:
            break
        run.append(cur.bit)
    return run


def recover_key_from_captures(
    curve: BinaryCurve,
    captures: Sequence[SigningCapture],
    public_point,
    cfg: ExtractionConfig = ExtractionConfig(),
    min_known: int = 8,
    max_known: int = 24,
    max_samples: int = 40,
) -> Optional[int]:
    """HNP key recovery from partially-decoded signings.

    Uses a uniform unknown-suffix width across samples (required by the
    lattice): the widest ``shift`` every usable capture supports.  Returns
    the verified private key or None.
    """
    if not captures:
        raise CryptoError("no captures")
    usable = []
    for cap in captures:
        run = leading_run(cap.extracted, cfg)
        nonce_bits = cap.n_iterations + 1
        known = min(len(run) + 1, max_known)  # +1 for the implicit top bit
        if known >= min_known + 1:
            usable.append((cap, run, nonce_bits, known))
    if not usable:
        return None
    # Uniform bound: every sample must leave the same number of unknown
    # bits, and no sample may be asked for more bits than it has — so the
    # shift is the *largest* unknown-suffix width among usable captures
    # (captures knowing more get truncated).
    shift = max(nonce_bits - known for _, _, nonce_bits, known in usable)
    samples = []
    for cap, run, nonce_bits, _ in usable[:max_samples]:
        n_known = nonce_bits - shift
        if n_known < 1:
            continue  # nonce shorter than the uniform suffix; skip
        value = 1
        for bit in run[: n_known - 1]:
            value = (value << 1) | bit
        samples.append(
            sample_from_signature(
                curve, cap.message, cap.signature, value, n_known,
                nonce_bits=nonce_bits,
            )
        )
    if not samples:
        return None
    return recover_private_key_hnp(curve, samples, public_point)
