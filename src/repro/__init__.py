"""repro — reproduction of "Last-Level Cache Side-Channel Attacks Are
Feasible in the Modern Public Cloud" (Zhao, Morrison, Fletcher, Torrellas;
ASPLOS 2024) on a simulated Intel server memory hierarchy.

Top-level layout:

* :mod:`repro.config` — machine / latency / noise presets.
* :mod:`repro.memsys` — the simulated Skylake-SP-style hierarchy.
* :mod:`repro.cloud` — tenant noise and the FaaS platform model.
* :mod:`repro.crypto` — GF(2^m) / binary-curve ECDSA (the victim's math).
* :mod:`repro.victim` — the vulnerable signing service and its leak.
* :mod:`repro.core` — the paper's attack: eviction sets, monitoring,
  PSD scanning, nonce extraction, end-to-end pipeline.
* :mod:`repro.dsp`, :mod:`repro.ml` — signal-processing and ML substrates.
* :mod:`repro.analysis` — statistics and result formatting.

Quick start (see examples/quickstart.py)::

    from repro.config import skylake_sp_small, cloud_run_noise, exposure_matched
    from repro.memsys import Machine
    from repro.core import AttackerContext
    from repro.core.evset import build_candidate_set, construct_sf_evset

    cfg = skylake_sp_small()
    machine = Machine(cfg, noise=exposure_matched(cloud_run_noise(), cfg), seed=1)
    ctx = AttackerContext(machine)
    ctx.calibrate()
    candidates = build_candidate_set(ctx, page_offset=0x240)
    target = candidates.vas.pop()
    outcome = construct_sf_evset(ctx, "bins", target, candidates.vas)
"""

__version__ = "1.0.0"

from . import config
from .errors import ReproError

__all__ = ["ReproError", "config", "__version__"]
