"""Summary statistics used across the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .._util import mean, median, percentile, stddev


@dataclass(frozen=True)
class Summary:
    """Mean / stddev / median / percentiles of a sample (paper table format)."""

    n: int
    mean: float
    std: float
    median: float
    p95: float
    minimum: float
    maximum: float

    def scaled(self, factor: float) -> "Summary":
        """Unit conversion helper (e.g. cycles -> ms)."""
        return Summary(
            n=self.n,
            mean=self.mean * factor,
            std=self.std * factor,
            median=self.median * factor,
            p95=self.p95 * factor,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute the Summary of a sample (zeros for an empty sample)."""
    vals = list(values)
    if not vals:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        n=len(vals),
        mean=mean(vals),
        std=stddev(vals),
        median=median(vals),
        p95=percentile(vals, 95.0),
        minimum=min(vals),
        maximum=max(vals),
    )


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) pairs."""
    vals = sorted(values)
    n = len(vals)
    return [(v, (i + 1) / n) for i, v in enumerate(vals)]
