"""Campaign progress metrics: the numbers a long-running fan-out reports.

:mod:`repro.exec` executes campaigns of seeded trials; while one runs (and
after it finishes) it summarizes itself with a :class:`CampaignMetrics`
snapshot — trials completed, throughput, ETA, failure counts.  The
formatting lives here, next to the other reporting helpers, so every
surface (benchmark harness, CLI, journal summaries) renders progress the
same way.
"""

from __future__ import annotations

import dataclasses

from .reporting import format_seconds


@dataclasses.dataclass(frozen=True)
class CampaignMetrics:
    """A snapshot of a campaign's execution state.

    ``completed`` counts trials actually executed this run; ``cached``
    counts journal hits that were not re-run; ``failed`` counts every
    unsuccessful outcome (in-trial exception, timeout, crashed worker);
    ``retried`` counts extra attempts beyond the first across all trials.
    """

    total: int
    completed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    pool_restarts: int = 0
    elapsed_s: float = 0.0

    @property
    def done(self) -> int:
        """Trials accounted for, whether executed or cached."""
        return self.completed + self.cached

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def trials_per_s(self) -> float:
        """Executed-trial throughput (cache hits excluded)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def eta_s(self) -> float:
        """Estimated seconds to finish the remaining trials."""
        rate = self.trials_per_s
        if rate <= 0.0:
            return float("inf") if self.remaining else 0.0
        return self.remaining / rate


def format_progress(metrics: CampaignMetrics, label: str = "campaign") -> str:
    """One-line progress report, e.g. for a live ``\\r``-refreshed status."""
    parts = [f"{label}: {metrics.done}/{metrics.total} trials"]
    if metrics.cached:
        parts.append(f"{metrics.cached} cached")
    if metrics.trials_per_s > 0.0:
        parts.append(f"{metrics.trials_per_s:.2f} trials/s")
    if metrics.remaining and metrics.eta_s != float("inf"):
        parts.append(f"ETA {format_seconds(metrics.eta_s)}")
    if metrics.failed:
        parts.append(f"{metrics.failed} failed")
    if metrics.retried:
        parts.append(f"{metrics.retried} retried")
    return " | ".join(parts)
