"""Campaign progress metrics: the numbers a long-running fan-out reports.

:mod:`repro.exec` executes campaigns of seeded trials; while one runs (and
after it finishes) it summarizes itself with a :class:`CampaignMetrics`
snapshot — trials completed, throughput, ETA, failure counts.  The
formatting lives here, next to the other reporting helpers, so every
surface (benchmark harness, CLI, journal summaries) renders progress the
same way.
"""

from __future__ import annotations

import dataclasses

from .reporting import format_seconds


@dataclasses.dataclass(frozen=True)
class CampaignMetrics:
    """A snapshot of a campaign's execution state.

    ``completed`` counts trials actually executed this run; ``cached``
    counts journal hits that were not re-run; ``failed`` counts every
    unsuccessful outcome (in-trial exception, timeout, crashed worker);
    ``retried`` counts extra attempts beyond the first across all trials.
    """

    total: int
    completed: int = 0
    cached: int = 0
    failed: int = 0
    retried: int = 0
    pool_restarts: int = 0
    elapsed_s: float = 0.0

    @property
    def done(self) -> int:
        """Trials accounted for, whether executed or cached."""
        return self.completed + self.cached

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)

    @property
    def trials_per_s(self) -> float:
        """Executed-trial throughput (cache hits excluded)."""
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def eta_s(self) -> float:
        """Estimated seconds to finish the remaining trials."""
        rate = self.trials_per_s
        if rate <= 0.0:
            return float("inf") if self.remaining else 0.0
        return self.remaining / rate

    @property
    def percent_done(self) -> float:
        """Completion percentage; an empty campaign is trivially done."""
        if self.total <= 0:
            return 100.0
        return 100.0 * self.done / self.total


def format_progress(metrics: CampaignMetrics, label: str = "campaign") -> str:
    """One-line progress report, e.g. for a live ``\\r``-refreshed status.

    Every line carries throughput and ETA so snapshot and finish output
    are self-describing; all derived numbers are safe for ``total=0``
    (an empty campaign reports 100% with nothing remaining).
    """
    parts = [
        f"{label}: {metrics.done}/{metrics.total} trials "
        f"({metrics.percent_done:.0f}%)"
    ]
    if metrics.cached:
        parts.append(f"{metrics.cached} cached")
    parts.append(f"{metrics.trials_per_s:.2f} trials/s")
    if metrics.remaining:
        eta = metrics.eta_s
        parts.append(
            "ETA unknown" if eta == float("inf")
            else f"ETA {format_seconds(eta)}"
        )
    if metrics.failed:
        parts.append(f"{metrics.failed} failed")
    if metrics.retried:
        parts.append(f"{metrics.retried} retried")
    return " | ".join(parts)
