"""Constant-memory streaming aggregates for fleet-scale campaigns.

A million-trial campaign cannot hold its results in memory; the fleet
results store streams records in trial-index order and this module folds
them into live aggregates.  Determinism matters more than speed here:
folding the same values in the same order always produces bit-identical
floats, which is what lets the acceptance check compare a sharded,
resumed, out-of-order-executed fleet run against a serial
``run_campaign`` of the same specs — both paths feed the aggregator in
trial-index order, so the summaries must match exactly.

Numeric moments use Welford's online algorithm (one pass, O(1) state);
``std`` is the population standard deviation, matching
:func:`repro._util.stddev`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterable, Optional, Tuple


class StreamingMoments:
    """Welford online count/mean/std/min/max of one numeric series."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def push(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 below two samples)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / self.count)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class CampaignAggregate:
    """Field-wise streaming summary of a stream of trial values.

    Accepts dict values or flat dataclasses (the two shapes campaign
    trials return).  Boolean fields aggregate as true-counts (success
    rates); numeric fields as :class:`StreamingMoments`.  Field order is
    normalized (sorted) in the output so summaries are comparable across
    ingestion strategies.
    """

    def __init__(self) -> None:
        self.trials = 0
        self._bools: Dict[str, int] = {}
        self._stats: Dict[str, StreamingMoments] = {}

    def push(self, value: Any) -> None:
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            fields = {
                f.name: getattr(value, f.name)
                for f in dataclasses.fields(value)
            }
        elif isinstance(value, dict):
            fields = value
        else:
            fields = {"value": value}
        self.trials += 1
        for name, field_value in fields.items():
            if isinstance(field_value, bool):
                self._bools[name] = self._bools.get(name, 0) + int(field_value)
            elif isinstance(field_value, (int, float)):
                self._stats.setdefault(name, StreamingMoments()).push(
                    field_value
                )

    def extend(self, values: Iterable[Any]) -> "CampaignAggregate":
        for value in values:
            self.push(value)
        return self

    def summary(self) -> Dict[str, Any]:
        """The aggregate as a plain, JSON-codable, order-normalized dict."""
        out: Dict[str, Any] = {"trials": self.trials}
        for name in sorted(self._bools):
            count = self._bools[name]
            out[name] = {
                "count": count,
                "rate": count / self.trials if self.trials else 0.0,
            }
        for name in sorted(self._stats):
            out[name] = self._stats[name].summary()
        return out


def aggregate_values(values: Iterable[Any]) -> Dict[str, Any]:
    """One-shot: the streaming summary of an iterable of trial values."""
    return CampaignAggregate().extend(values).summary()


def aggregates_equal(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Exact (bitwise-float) equality of two aggregate summaries."""
    return a == b
