"""Data-plane observability: counters from the flat memory system.

The array-backed caches and the batched access APIs keep cheap counters as
they run — per-structure touched-set counts, policy-table operation counts,
and batch-size statistics from the Machine's batched entry points.  This
module collects them into one flat dict so benchmarks (and the perf
microbenchmark's ``BENCH_perf.json``) can report how the data plane was
exercised alongside their timing numbers.
"""

from __future__ import annotations

from typing import Dict


def dataplane_summary(machine) -> Dict[str, float]:
    """Flat counter snapshot of a machine's data plane.

    Keys:

    * ``batch_calls`` / ``batch_lines`` — how many batched traversals ran
      and how many line accesses they carried.
    * ``mean_batch_size`` — lines per batched call (0.0 before any batch).
    * ``<structure>_touched_sets`` — sets ever inserted into or
      noise-reconciled, per shared structure (private caches are summed
      across cores).
    * ``<structure>_policy_touches`` / ``_fills`` / ``_victims`` —
      policy-table operations (hits, installs, evictions) per structure.
    """
    hier = machine.hierarchy
    out: Dict[str, float] = {
        "batch_calls": machine.batch_calls,
        "batch_lines": machine.batch_lines,
        "mean_batch_size": (
            machine.batch_lines / machine.batch_calls if machine.batch_calls else 0.0
        ),
    }
    structures = {
        "l1": hier.l1,
        "l2": hier.l2,
        "sf": [hier.sf],
        "llc": [hier.llc],
    }
    for label, caches in structures.items():
        out[f"{label}_touched_sets"] = sum(c.touched_sets for c in caches)
        for counter in ("policy_touches", "policy_fills", "policy_victims"):
            # Partitioned (defense) caches expose touched_sets but not the
            # per-table counters; report 0 rather than fail.
            out[f"{label}_{counter}"] = sum(
                getattr(c, counter, 0) for c in caches
            )
    return out
