"""Result analysis: summary statistics, CDFs, and table rendering.

Every benchmark uses these helpers to print its paper-vs-measured rows in
a uniform format (see EXPERIMENTS.md for the collected output).
"""

from .stats import Summary, cdf_points, summarize
from .reporting import Table, format_seconds, paper_vs_measured

__all__ = [
    "Summary",
    "Table",
    "cdf_points",
    "format_seconds",
    "paper_vs_measured",
    "summarize",
]
