"""Result analysis: summary statistics, CDFs, and table rendering.

Every benchmark uses these helpers to print its paper-vs-measured rows in
a uniform format (see EXPERIMENTS.md for the collected output).
"""

from .dataplane import dataplane_summary
from .progress import CampaignMetrics, format_progress
from .stats import Summary, cdf_points, summarize
from .reporting import Table, format_seconds, paper_vs_measured

__all__ = [
    "CampaignMetrics",
    "Summary",
    "Table",
    "cdf_points",
    "dataplane_summary",
    "format_progress",
    "format_seconds",
    "paper_vs_measured",
    "summarize",
]
