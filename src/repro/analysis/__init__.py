"""Result analysis: summary statistics, CDFs, and table rendering.

Every benchmark uses these helpers to print its paper-vs-measured rows in
a uniform format (see EXPERIMENTS.md for the collected output).
:mod:`repro.analysis.streaming` adds constant-memory aggregates for
fleet-scale campaigns whose results never fit in memory at once.
"""

from .dataplane import dataplane_summary
from .progress import CampaignMetrics, format_progress
from .stats import Summary, cdf_points, summarize
from .streaming import (
    CampaignAggregate,
    StreamingMoments,
    aggregate_values,
    aggregates_equal,
)
from .reporting import Table, format_seconds, paper_vs_measured

__all__ = [
    "CampaignAggregate",
    "CampaignMetrics",
    "StreamingMoments",
    "Summary",
    "Table",
    "aggregate_values",
    "aggregates_equal",
    "cdf_points",
    "dataplane_summary",
    "format_progress",
    "format_seconds",
    "paper_vs_measured",
    "summarize",
]
