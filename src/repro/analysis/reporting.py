"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


class Table:
    """Aligned-column text table with a title (benchmark output format)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(row):
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [f"== {self.title} ==", fmt(self.columns), sep]
        lines.extend(fmt(r) for r in self.rows)
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()


def format_seconds(seconds: float) -> str:
    """Human scale: us / ms / s / min."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def paper_vs_measured(paper: str, measured: str) -> str:
    """Uniform 'paper -> measured' cell used across benchmarks."""
    return f"paper {paper} | measured {measured}"
