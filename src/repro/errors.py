"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the boundary.  Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, noise, or attack configuration is inconsistent."""


class AddressError(ReproError):
    """An address is malformed or outside the mapped region."""


class CoherenceError(ReproError):
    """The simulated cache hierarchy reached an inconsistent state."""


class EvictionSetError(ReproError):
    """Eviction set construction failed permanently."""


class BudgetExceededError(EvictionSetError):
    """An eviction set construction attempt ran out of its time budget."""


class ScanError(ReproError):
    """Target cache-set identification failed."""


class ExtractionError(ReproError):
    """Nonce-bit extraction from an access trace failed."""


class CryptoError(ReproError):
    """Invalid cryptographic parameters or operations."""


class NotTrainedError(ReproError):
    """A model was used before being fitted."""
