"""Fleet service verbs: submit / status / resume / drain / aggregate.

``python -m repro fleet`` fronts this module.  A *run* is a directory
under the fleet root (one per campaign fingerprint, see
:mod:`repro.fleet.store`); its ``meta.json`` records the CLI spec that
built the campaign, so ``resume`` and ``aggregate`` can rebuild the
exact campaign — and verify its fingerprint — with no other state.

Verbs:

* ``submit``  — build the named campaign, plan shards, run the scheduler
  until complete (or drained via SIGINT/SIGTERM/``--stop-after-shards``).
* ``resume``  — rebuild a run's campaign from its ``meta.json`` and
  drive the remaining shards; a no-op for complete runs.
* ``status``  — list runs (or one run's per-shard progress) from disk.
* ``drain``   — finish only the shards that already started (partial
  segments), then compact: the "finish what you began, start nothing
  new" shutdown for a run that will not continue.
* ``aggregate`` — stream the store into constant-memory aggregates;
  ``--verify-serial`` re-runs the campaign serially in-process and
  asserts value-identical aggregates (the fleet's parity oracle).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
from pathlib import Path
from types import SimpleNamespace
from typing import Dict, Optional

from ..analysis.streaming import aggregate_values
from ..exec.campaigns import CLI_CAMPAIGNS
from ..exec.executor import ExecPolicy, run_campaign
from ..exec.progress import ProgressReporter
from ..exec.spec import Campaign
from .campaigns import FLEET_CAMPAIGNS, quiet_hours_priority
from .datacenter import Datacenter, DatacenterConfig
from .scheduler import FleetPolicy, FleetReport, FleetScheduler
from .store import FleetStore

#: Everything submittable to the fleet: the generic CLI campaigns plus
#: the fleet-native (cheap Monte-Carlo / placement) ones.
SUBMITTABLE = {**CLI_CAMPAIGNS, **FLEET_CAMPAIGNS}

#: The CLI args a campaign builder may consume; persisted to meta.json
#: so resume/aggregate can rebuild the campaign bit-identically.
_SPEC_FIELDS = (
    "campaign_env",
    "algo",
    "trials",
    "budget_ms",
    "seed",
    "page_offset",
    "filtered",
    "window_ms",
    "hosts",
    "dc_seed",
)

_SPEC_DEFAULTS = {
    "campaign_env": "cloud",
    "algo": "bins",
    "trials": 8,
    "budget_ms": 1000.0,
    "seed": 1000,
    "page_offset": 0x240,
    "filtered": False,
    "window_ms": 0.5,
    "hosts": 256,
    "dc_seed": 0,
}


def cli_spec(name: str, args) -> Dict:
    """The JSON-codable rebuild spec of a CLI-submitted campaign."""
    spec = {"campaign": name}
    for field in _SPEC_FIELDS:
        spec[field] = getattr(args, field, _SPEC_DEFAULTS[field])
    return spec


def build_campaign(spec: Dict) -> Campaign:
    """Rebuild a campaign from its spec (same path submit used)."""
    name = spec["campaign"]
    if name not in SUBMITTABLE:
        raise ValueError(f"unknown fleet campaign {name!r}")
    ns = SimpleNamespace(**{**_SPEC_DEFAULTS, **{
        k: v for k, v in spec.items() if k != "campaign"
    }})
    return SUBMITTABLE[name](ns)


def policy_from_args(args) -> FleetPolicy:
    return FleetPolicy(
        shard_size=args.shard_size,
        max_inflight=args.max_inflight,
        jobs_per_shard=args.jobs_per_shard,
        queue_depth=args.queue_depth,
        shard_retries=args.shard_retries,
        timeout_s=args.timeout_s,
        flush_every=args.flush_every,
        batch=args.batch,
        stop_after_shards=args.stop_after_shards,
    )


def _priority_for(spec: Dict, campaign: Campaign):
    """Quiet-hours-first dispatch for placement campaigns, else FIFO."""
    if spec.get("campaign") != "dc-placement":
        return None
    datacenter = Datacenter(
        DatacenterConfig(n_hosts=spec.get("hosts", 256)),
        seed=spec.get("dc_seed", 0),
    )
    return quiet_hours_priority(campaign, datacenter)


async def _run_with_signals(scheduler: FleetScheduler, shards=None) -> FleetReport:
    """Scheduler run with SIGINT/SIGTERM wired to graceful drain."""
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, scheduler.request_drain)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    try:
        return await scheduler.run(shards)
    finally:
        for signum in installed:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)


def _print_report(report: FleetReport, store: FleetStore) -> None:
    state = (
        "complete" if report.complete
        else ("drained" if report.drained else "incomplete")
    )
    print(f"run: {store.run_id} [{state}]")
    print(f"fingerprint: {store.fingerprint}")
    print(
        f"trials: {report.completed_trials}/{report.total_trials} done "
        f"({report.failed_trials} failed) | shards: "
        f"{report.shards_executed} executed, {report.shards_skipped} skipped, "
        f"{report.shards_failed} with failures, "
        f"{report.shard_retries} retried | {report.elapsed_s:.2f}s wall"
    )
    if report.prefix_hits or report.prefix_misses:
        print(
            f"prefix store: {report.prefix_hits} restored, "
            f"{report.prefix_misses} built"
        )


def _drive(campaign: Campaign, spec: Dict, args, shards=None) -> int:
    """Common submit/resume body: schedule, run, compact when complete."""
    policy = policy_from_args(args)
    store = FleetStore(args.fleet_dir, campaign, policy.shard_size)
    store.write_meta({"cli": spec})
    reporter = ProgressReporter(enabled=args.progress)
    scheduler = FleetScheduler(
        campaign,
        store,
        policy,
        priority=_priority_for(spec, campaign),
        reporter=reporter,
    )
    report = asyncio.run(_run_with_signals(scheduler, shards))
    _print_report(report, store)
    if report.complete:
        path = store.compact()
        print(f"compacted: {path}")
        summary = aggregate_values(v for _, v in store.iter_values())
        print("aggregates: " + json.dumps(summary, sort_keys=True))
    if report.failed_trials or report.shards_failed:
        return 1
    return 0


# -- verbs -------------------------------------------------------------------


def cmd_submit(args) -> int:
    if args.name not in SUBMITTABLE:
        print(f"unknown campaign {args.name!r}; "
              f"choose from {sorted(SUBMITTABLE)}", file=sys.stderr)
        return 2
    spec = cli_spec(args.name, args)
    campaign = build_campaign(spec)
    return _drive(campaign, spec, args)


def _find_run_dir(root: Path, run: str) -> Optional[Path]:
    root = Path(root)
    direct = root / run
    if direct.is_dir():
        return direct
    matches = sorted(
        p for p in root.glob("*") if p.is_dir() and p.name.startswith(run)
    )
    return matches[0] if len(matches) == 1 else None


def _load_meta(run_dir: Path) -> Optional[Dict]:
    path = run_dir / FleetStore.META
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _reopen(args) -> Optional[tuple]:
    """(campaign, spec, store) for an existing run directory, or None."""
    run_dir = _find_run_dir(Path(args.fleet_dir), args.run)
    if run_dir is None:
        print(f"no unique run matching {args.run!r} under {args.fleet_dir}",
              file=sys.stderr)
        return None
    meta = _load_meta(run_dir)
    if not meta or "cli" not in meta:
        print(f"{run_dir} has no rebuildable meta.json", file=sys.stderr)
        return None
    campaign = build_campaign(meta["cli"])
    store = FleetStore(args.fleet_dir, campaign, meta["shard_size"])
    if store.fingerprint != meta["fingerprint"]:
        print(
            f"fingerprint mismatch: meta says {meta['fingerprint'][:16]}, "
            f"rebuilt campaign is {store.fingerprint[:16]} "
            "(code version changed?)",
            file=sys.stderr,
        )
        return None
    # The run's shard geometry is fixed at submit time; resume/drain must
    # re-plan with it even if the CLI default differs.
    args.shard_size = meta["shard_size"]
    return campaign, meta, store


def cmd_resume(args) -> int:
    reopened = _reopen(args)
    if reopened is None:
        return 2
    campaign, meta, store = reopened
    pending = store.pending_shards()
    if not pending:
        print(f"run {store.run_id} already complete")
        return 0
    print(f"resuming {store.run_id}: {len(pending)} shards pending")
    return _drive(campaign, meta["cli"], args, shards=pending)


def cmd_drain(args) -> int:
    """Finish started-but-incomplete shards only, then compact."""
    reopened = _reopen(args)
    if reopened is None:
        return 2
    campaign, meta, store = reopened
    started = [
        s for s in store.pending_shards() if store.segment_path(s).exists()
    ]
    if started:
        print(f"draining {store.run_id}: finishing {len(started)} "
              "started shards")
        code = _drive(campaign, meta["cli"], args, shards=started)
        if code:
            return code
    path = store.compact()
    done = store.completed_trials()
    print(f"drained {store.run_id}: {done}/{len(campaign)} trials durable, "
          f"compacted to {path}")
    return 0


def cmd_status(args) -> int:
    root = Path(args.fleet_dir)
    if args.run:
        reopened = _reopen(args)
        if reopened is None:
            return 2
        campaign, meta, store = reopened
        progress = store.progress(recount=True)
        done = sum(p.done for p in progress)
        complete = sum(1 for p in progress if p.complete)
        print(f"run: {store.run_id}")
        print(f"fingerprint: {store.fingerprint}")
        print(f"trials: {done}/{len(campaign)}")
        print(f"shards: {complete}/{len(progress)} complete")
        for p in progress:
            if args.verbose or not p.complete:
                print(f"  shard {p.shard_id:6d} [{p.lo}:{p.hi}) "
                      f"{p.done}/{p.total}"
                      f"{' complete' if p.complete else ''}")
        return 0
    runs = sorted(p for p in root.glob("*") if p.is_dir())
    if not runs:
        print(f"no fleet runs under {root}")
        return 0
    for run_dir in runs:
        meta = _load_meta(run_dir)
        if not meta:
            print(f"{run_dir.name}: (no meta)")
            continue
        print(
            f"{run_dir.name}: campaign={meta.get('name')} "
            f"trials={meta.get('n_trials')} shards={meta.get('n_shards')} "
            f"shard_size={meta.get('shard_size')}"
        )
    return 0


def cmd_aggregate(args) -> int:
    reopened = _reopen(args)
    if reopened is None:
        return 2
    campaign, meta, store = reopened
    fleet_summary = aggregate_values(v for _, v in store.iter_values())
    print(json.dumps(fleet_summary, sort_keys=True))
    if not args.verify_serial:
        return 0
    # The acceptance oracle: a serial run_campaign over the same specs
    # must fold to bit-identical aggregates.
    serial = run_campaign(campaign, ExecPolicy(jobs=1)).raise_on_failure()
    serial_summary = aggregate_values(serial.values())
    if serial_summary != fleet_summary:
        print("MISMATCH: fleet aggregates differ from serial run_campaign",
              file=sys.stderr)
        print("serial: " + json.dumps(serial_summary, sort_keys=True),
              file=sys.stderr)
        return 1
    print(f"verified: fleet aggregates == serial run_campaign "
          f"({fleet_summary['trials']} trials)")
    return 0


FLEET_VERBS = {
    "submit": cmd_submit,
    "status": cmd_status,
    "resume": cmd_resume,
    "drain": cmd_drain,
    "aggregate": cmd_aggregate,
}
