"""A simulated datacenter: hundreds of FaaS hosts with churn and diurnal load.

The paper's fleet-scale context (Sections 2.4, 4.3): attacker and victim
containers land on multi-tenant hosts whose background activity comes
from *other tenants* — a population that churns (instances come and go)
and breathes with the time of day (the paper measured 3–5 am "quiet
hours" and found them barely quieter: 11.1 vs 11.5 accesses/ms/set,
EXPERIMENTS.md Table 3).  This module models that population cheaply:

* each host carries a tenant count evolving as an M/M/∞-style birth-death
  chain (Poisson arrivals, per-tenant exponential departures) stepped
  hour by hour from a fixed seed — fully reproducible;
* a 24-hour diurnal profile scales arrival pressure, calibrated so the
  quiet-hours dip matches the paper's measured 11.1/11.5 ratio;
* per-(host, hour) background noise reduces to a standard
  :class:`repro.config.NoiseConfig`, so any campaign trial can run
  "placed" on a datacenter host by just taking that config;
* placement itself is a first-class knob: :meth:`Datacenter.place_pair`
  deterministically assigns attacker/victim instances to hosts, and
  :meth:`Datacenter.materialize_host` builds a real
  :class:`repro.cloud.faas.Host` (full simulated machine) for exactly
  the host a trial needs — the other hundreds stay bookkeeping-only.

Placement bookkeeping is O(hosts); machines are materialized lazily, so
a 512-host datacenter costs kilobytes until a trial runs on it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from .._util import make_rng, poisson
from ..config import MachineConfig, NoiseConfig, cloud_run_noise, skylake_sp_small
from ..errors import ConfigurationError

#: The paper's quiet hours (3-5 am, local datacenter time).
QUIET_HOURS = (3, 4)

#: Diurnal arrival-pressure multipliers, hour 0..23.  Calibrated so the
#: stationary quiet-hours load over hours 3-4 is ~11.1/11.5 of the daily
#: peak-plateau load (EXPERIMENTS.md Table 3: 11.1 vs 11.5 acc/ms/set),
#: i.e. the paper's finding that Cloud Run barely sleeps.
DEFAULT_DIURNAL: Tuple[float, ...] = (
    0.990, 0.980, 0.970, 0.965, 0.965, 0.975,  # 0-5: small nightly dip
    0.985, 1.000, 1.000, 1.000, 1.000, 1.000,  # 6-11: daytime plateau
    1.000, 1.000, 1.000, 1.000, 1.000, 1.000,  # 12-17
    1.000, 1.000, 1.000, 0.995, 0.995, 0.990,  # 18-23
)


@dataclasses.dataclass(frozen=True)
class DatacenterConfig:
    """Shape of the simulated datacenter.

    ``mean_tenants_per_host`` at ``per_tenant_rate`` reproduces the
    paper's aggregate 11.5 accesses/ms/set at full occupancy;
    ``churn_per_host_hour`` is the Poisson tenant arrival rate per host
    (departure rate balances it at the stationary mean).
    """

    n_hosts: int = 256
    cores_per_host: int = 4
    mean_tenants_per_host: float = 8.0
    churn_per_host_hour: float = 2.0
    per_tenant_rate: float = cloud_run_noise().llc_accesses_per_ms_per_set / 8.0
    sf_fraction: float = 0.8
    preemption_rate_hz: float = 100.0
    diurnal: Tuple[float, ...] = DEFAULT_DIURNAL

    def __post_init__(self) -> None:
        if self.n_hosts < 1:
            raise ConfigurationError("need at least one host")
        if len(self.diurnal) != 24:
            raise ConfigurationError("diurnal profile needs 24 hourly factors")
        if self.mean_tenants_per_host <= 0 or self.churn_per_host_hour < 0:
            raise ConfigurationError("tenant population must be positive")


@dataclasses.dataclass(frozen=True)
class Placement:
    """One attacker/victim co-location decision, hour included.

    The scheduling knob a campaign sweeps: *which* host and *when*
    determine the noise floor the attack must survive.
    """

    host_id: int
    hour: int
    co_located: bool

    def label(self) -> str:
        return f"host-{self.host_id:04d}@{self.hour:02d}h"


class Datacenter:
    """Deterministic tenant-churn model over a fleet of simulated hosts."""

    def __init__(
        self,
        cfg: Optional[DatacenterConfig] = None,
        seed: int = 0,
        machine_cfg: Optional[MachineConfig] = None,
    ) -> None:
        self.cfg = cfg or DatacenterConfig()
        self.seed = seed
        self.machine_cfg = machine_cfg or skylake_sp_small()
        #: Per-host tenant-count trajectories, grown lazily hour by hour,
        #: and the per-host RNGs that extend them.
        self._trajectories: Dict[int, List[int]] = {}
        self._rngs: Dict[int, object] = {}

    # -- tenant churn ------------------------------------------------------

    def tenants_at(self, host_id: int, hour: int) -> int:
        """Tenant count on ``host_id`` at absolute hour ``hour``.

        Hour 0 samples the stationary Poisson occupancy; every later
        hour applies Poisson arrivals (diurnally scaled) and binomial
        departures.  The chain for a host depends only on
        ``(datacenter seed, host_id)``, so any (host, hour) query is
        reproducible regardless of query order.
        """
        if not 0 <= host_id < self.cfg.n_hosts:
            raise ConfigurationError(f"host {host_id} outside fleet")
        if hour < 0:
            raise ConfigurationError("hour must be non-negative")
        traj = self._trajectories.get(host_id)
        if traj is None:
            rng = make_rng(("dc-churn", self.seed, host_id))
            traj = [poisson(rng, self.cfg.mean_tenants_per_host)]
            self._trajectories[host_id] = traj
            self._rngs[host_id] = rng
        rng = self._rngs[host_id]
        while len(traj) <= hour:
            h = (len(traj) - 1) % 24
            n = traj[-1]
            arrivals = poisson(
                rng, self.cfg.churn_per_host_hour * self.cfg.diurnal[h]
            )
            # Per-tenant departure probability balancing arrivals at the
            # stationary mean (M/M/inf discretized to one-hour steps).
            p_leave = min(
                1.0,
                self.cfg.churn_per_host_hour / self.cfg.mean_tenants_per_host,
            )
            departures = sum(1 for _ in range(n) if rng.random() < p_leave)
            traj.append(max(0, n + arrivals - departures))
        return traj[hour]

    # -- noise -------------------------------------------------------------

    def noise_at(self, host_id: int, hour: int) -> NoiseConfig:
        """The background-noise config a container on this host sees.

        Rate = tenants x per-tenant rate x diurnal factor: both the
        population and each tenant's activity breathe with the clock.
        """
        tenants = self.tenants_at(host_id, hour)
        factor = self.cfg.diurnal[hour % 24]
        return NoiseConfig(
            name=f"dc-host{host_id}-h{hour % 24}",
            llc_accesses_per_ms_per_set=(
                tenants * self.cfg.per_tenant_rate * factor
            ),
            sf_fraction=self.cfg.sf_fraction,
            preemption_rate_hz=self.preemption_rate(hour),
        )

    def preemption_rate(self, hour: int) -> float:
        return self.cfg.preemption_rate_hz * self.cfg.diurnal[hour % 24]

    def mean_rate_at(self, hour: int, sample_hosts: int = 32) -> float:
        """Fleet-mean noise rate at ``hour`` over a deterministic sample."""
        hosts = range(min(sample_hosts, self.cfg.n_hosts))
        rates = [
            self.noise_at(h, hour).llc_accesses_per_ms_per_set for h in hosts
        ]
        return sum(rates) / len(rates)

    # -- placement ---------------------------------------------------------

    def place_pair(self, key: int, hour: int = 12) -> Placement:
        """Place one attacker/victim pair at ``hour``; keyed, reproducible.

        Mirrors :class:`repro.cloud.faas.FaaSPlatform`'s random placement
        (co-location via luck or prior work [111]): the attacker lands on
        a random host; the victim lands on the same host with probability
        proportional to that host's free capacity.
        """
        rng = make_rng(("dc-place", self.seed, key))
        host_id = rng.randrange(self.cfg.n_hosts)
        tenants = self.tenants_at(host_id, hour)
        # 2 cores for the attacker pair (main + helper, Section 4.2);
        # crowded hosts are less likely to fit the victim too.
        free = max(0, self.cfg.cores_per_host - 2)
        crowding = min(1.0, tenants / (2.0 * self.cfg.mean_tenants_per_host))
        co_located = free > 0 and rng.random() > crowding
        return Placement(host_id=host_id, hour=hour, co_located=co_located)

    def placements(
        self, n: int, hours: Optional[Tuple[int, ...]] = None
    ) -> List[Placement]:
        """``n`` keyed placements sweeping ``hours`` round-robin."""
        hours = hours or tuple(range(24))
        return [
            self.place_pair(key, hour=hours[key % len(hours)])
            for key in range(n)
        ]

    # -- materialization ---------------------------------------------------

    def materialize_host(self, placement: Placement, seed: int = 0):
        """A real :class:`repro.cloud.faas.Host` for one placement.

        Builds the full simulated machine with the placement's noise
        config — the expensive object only the trial that runs there
        pays for.
        """
        from ..cloud.faas import Host

        return Host(
            name=f"dc-host-{placement.host_id:04d}",
            machine_cfg=self.machine_cfg,
            noise_cfg=self.noise_at(placement.host_id, placement.hour),
            seed=make_rng(
                ("dc-host-seed", self.seed, placement.host_id, seed)
            ).getrandbits(32),
        )
