"""repro.fleet — sharded, resumable, datacenter-scale campaign service.

Turns one-shot :func:`repro.exec.run_campaign` invocations into a
service that survives restarts and scales to hundreds of thousands of
trials:

* :mod:`repro.fleet.sharding` — deterministic contiguous trial-range
  shards keyed by the campaign fingerprint (the dispatch/resume unit);
* :mod:`repro.fleet.scheduler` — an asyncio scheduler with a bounded
  priority queue, per-shard backpressure, crash retry with backoff, and
  graceful drain;
* :mod:`repro.fleet.store` — append-only per-shard JSONL segments plus a
  compacted, journal-compatible index; constant-memory streaming reads;
* :mod:`repro.fleet.datacenter` — a simulated datacenter of
  :mod:`repro.cloud.faas` hosts with tenant churn and diurnal noise,
  making placement a first-class scheduling knob;
* :mod:`repro.fleet.campaigns` — fleet-native cheap Monte-Carlo and
  placement-swept campaigns;
* :mod:`repro.fleet.service` — the ``python -m repro fleet`` verbs
  (submit / status / resume / drain / aggregate).

The invariant the whole package defends: a sharded, prioritized,
killed-and-resumed fleet run folds to aggregates *value-identical* to a
serial ``run_campaign`` of the same specs.
"""

from .campaigns import (
    FLEET_CAMPAIGNS,
    NoiseWindowConfig,
    NoiseWindowSample,
    noise_mc_campaign,
    noise_window_trial,
    placement_campaign,
    quiet_hours_priority,
)
from .datacenter import (
    DEFAULT_DIURNAL,
    QUIET_HOURS,
    Datacenter,
    DatacenterConfig,
    Placement,
)
from .scheduler import (
    FleetPolicy,
    FleetReport,
    FleetScheduler,
    ShardOutcome,
    run_fleet,
)
from .sharding import (
    DEFAULT_SHARD_SIZE,
    ShardSpec,
    order_shards,
    plan_shards,
    shard_subcampaign,
)
from .store import DEFAULT_FLEET_DIR, FleetStore, ShardJournal, ShardProgress

__all__ = [
    "DEFAULT_DIURNAL",
    "DEFAULT_FLEET_DIR",
    "DEFAULT_SHARD_SIZE",
    "Datacenter",
    "DatacenterConfig",
    "FLEET_CAMPAIGNS",
    "FleetPolicy",
    "FleetReport",
    "FleetScheduler",
    "FleetStore",
    "NoiseWindowConfig",
    "NoiseWindowSample",
    "Placement",
    "QUIET_HOURS",
    "ShardJournal",
    "ShardOutcome",
    "ShardProgress",
    "ShardSpec",
    "noise_mc_campaign",
    "noise_window_trial",
    "order_shards",
    "placement_campaign",
    "plan_shards",
    "quiet_hours_priority",
    "run_fleet",
    "shard_subcampaign",
]
