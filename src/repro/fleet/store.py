"""Append-only fleet results store: per-shard segments + compacted index.

One fleet run = one directory keyed by the campaign fingerprint::

    <root>/<name>-<fp16>/
        meta.json            # campaign identity + how to rebuild it
        index.json           # per-shard progress cache (rebuildable)
        compacted.jsonl      # complete shards, merged, index-sorted
        shards/shard-000000.jsonl   # live per-shard segments

Segments and the compacted file use the *exact* line format of
:mod:`repro.exec.journal` (a header record followed by one JSON trial
record per line), so every journal reader works on fleet output; the
compacted file of a finished run *is* a valid single-file campaign
journal.  Writes are append-only and the durability unit is a small
batch of trials (``flush_every``): a SIGKILL loses at most the unflushed
tail of each in-flight shard, which resume simply re-runs.

Reading is streaming: :meth:`FleetStore.iter_completed` walks shards in
index order, holding at most one shard's records in memory at a time —
that is what lets a million-trial campaign aggregate in constant RSS.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..exec.journal import _safe_name
from ..exec.spec import Campaign
from .sharding import ShardSpec, plan_shards

#: Default root for fleet run directories (gitignored, like journals).
DEFAULT_FLEET_DIR = Path(".repro") / "fleet"


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON via tmp-file + rename so readers never see a torn file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _parse_segment_lines(raw: str) -> Iterator[dict]:
    """Yield well-formed JSON records of a segment, dropping a torn tail."""
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            # The writer died mid-append; every record before the torn
            # line is still good, and nothing valid can follow it.
            continue


class ShardJournal:
    """Journal adapter for one shard: what ``run_campaign`` writes into.

    Duck-types :class:`repro.exec.journal.CampaignJournal` (``fingerprint``
    / ``load_completed`` / ``append``) but maps the sub-campaign's local
    trial indices to the parent campaign's global ones, and batches
    appends (``flush_every``) so cheap trials are not fsync-bound.
    """

    def __init__(
        self,
        store: "FleetStore",
        shard: ShardSpec,
        flush_every: int = 64,
    ) -> None:
        self.store = store
        self.shard = shard
        self.fingerprint = store.fingerprint
        self.path = store.segment_path(shard)
        self.flush_every = max(1, flush_every)
        self._buffer: List[str] = []
        self._header_written = self.path.exists()

    # -- journal duck-type (local indices, used by run_campaign) ----------

    def load_completed(self) -> Dict[int, dict]:
        """Finished trials of this shard, keyed by *local* index."""
        completed: Dict[int, dict] = {}
        for index, obj in self.store.load_shard_records(self.shard).items():
            obj = dict(obj)
            obj["value"] = self.store.campaign.codec.decode(obj["value"])
            completed[index - self.shard.lo] = obj
        return completed

    def append(self, record) -> None:
        """Buffer one finished trial (local index -> global index)."""
        global_index = self.shard.lo + record.index
        payload = {
            "kind": "trial",
            "index": global_index,
            "seed": record.seed,
            "status": record.status,
            "elapsed_s": record.elapsed_s,
            "attempts": record.attempts,
            "error": record.error,
            "value": (
                self.store.campaign.codec.encode(record.value)
                if record.status == "ok"
                else None
            ),
        }
        self._buffer.append(json.dumps(payload, sort_keys=True))
        if len(self._buffer) >= self.flush_every:
            self.flush()

    # -- durability -------------------------------------------------------

    def flush(self) -> None:
        if not self._buffer:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = []
        if not self._header_written:
            lines.append(json.dumps(self.store.segment_header(self.shard),
                                    sort_keys=True))
            self._header_written = True
        lines.extend(self._buffer)
        self._buffer = []
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "ShardJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclasses.dataclass(frozen=True)
class ShardProgress:
    """One shard's durable progress, as the index records it."""

    shard_id: int
    lo: int
    hi: int
    done: int

    @property
    def total(self) -> int:
        return self.hi - self.lo

    @property
    def complete(self) -> bool:
        return self.done >= self.total


class FleetStore:
    """The on-disk results store of one fleet campaign run."""

    META = "meta.json"
    INDEX = "index.json"
    COMPACTED = "compacted.jsonl"
    SHARD_DIR = "shards"

    def __init__(
        self,
        root: Union[str, Path],
        campaign: Campaign,
        shard_size: int,
        version: Optional[str] = None,
    ) -> None:
        self.campaign = campaign
        self.shard_size = shard_size
        self.fingerprint = campaign.fingerprint(version)
        self.root = Path(root)
        self.run_dir = self.root / (
            f"{_safe_name(campaign.name)}-{self.fingerprint[:16]}"
        )
        self.shards = plan_shards(
            campaign, shard_size, version, fingerprint=self.fingerprint
        )

    # -- identity ---------------------------------------------------------

    @property
    def run_id(self) -> str:
        return self.run_dir.name

    def segment_path(self, shard: ShardSpec) -> Path:
        return self.run_dir / self.SHARD_DIR / f"{shard.key}.jsonl"

    def segment_header(self, shard: ShardSpec) -> dict:
        """Journal-compatible header, extended with the shard range."""
        return {
            "kind": "header",
            "name": self.campaign.name,
            "fingerprint": self.fingerprint,
            "n_trials": len(self.campaign),
            "shard_id": shard.shard_id,
            "lo": shard.lo,
            "hi": shard.hi,
        }

    def write_meta(self, extra: Optional[dict] = None) -> None:
        """Persist run identity (and optional rebuild spec) once."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": "fleet-meta",
            "name": self.campaign.name,
            "fingerprint": self.fingerprint,
            "n_trials": len(self.campaign),
            "shard_size": self.shard_size,
            "n_shards": len(self.shards),
        }
        if extra:
            payload.update(extra)
        _atomic_write_json(self.run_dir / self.META, payload)

    def read_meta(self) -> Optional[dict]:
        path = self.run_dir / self.META
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    # -- writing ----------------------------------------------------------

    def shard_journal(self, shard: ShardSpec, flush_every: int = 64) -> ShardJournal:
        self._check_shard(shard)
        return ShardJournal(self, shard, flush_every=flush_every)

    def _check_shard(self, shard: ShardSpec) -> None:
        if shard.fingerprint != self.fingerprint:
            raise ValueError(
                f"shard {shard.key} belongs to campaign "
                f"{shard.fingerprint[:16]}, store holds {self.fingerprint[:16]}"
            )

    # -- raw reading ------------------------------------------------------

    def _compacted_ids(self) -> List[int]:
        index = self._load_index()
        return sorted(index.get("compacted", []))

    def load_shard_records(self, shard: ShardSpec) -> Dict[int, dict]:
        """Valid finished-trial records of one shard, by *global* index.

        Reads the live segment and, when the shard was compacted, its
        slice of the compacted file.  Records are validated against the
        campaign (index range, per-index seed) exactly like
        ``CampaignJournal.load_completed``.
        """
        self._check_shard(shard)
        records: Dict[int, dict] = {}
        if shard.shard_id in self._compacted_ids():
            for obj in self._iter_compacted_range(shard.lo, shard.hi):
                self._admit(records, obj, shard)
        path = self.segment_path(shard)
        if path.exists():
            with open(path, "r", encoding="utf-8") as fh:
                raw = fh.read()
            for obj in _parse_segment_lines(raw):
                self._admit(records, obj, shard)
        return records

    def _admit(self, records: Dict[int, dict], obj: dict, shard: ShardSpec) -> None:
        """Validate one parsed record and add it to the shard's map."""
        if obj.get("kind") == "header":
            # A mismatched fingerprint cannot happen without tampering
            # (it is part of the directory name), but stay defensive.
            if obj.get("fingerprint") != self.fingerprint:
                records.clear()
            return
        if obj.get("kind") != "trial" or obj.get("status") != "ok":
            return
        index = obj.get("index")
        if not isinstance(index, int) or not shard.contains(index):
            return
        if obj.get("seed") != self.campaign.seeds[index]:
            return
        records[index] = obj

    def _iter_compacted_range(self, lo: int, hi: int) -> Iterator[dict]:
        """Stream compacted records with ``lo <= index < hi``.

        The compacted file is index-sorted, so the scan stops at ``hi``.
        """
        path = self.run_dir / self.COMPACTED
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if obj.get("kind") != "trial":
                    continue
                index = obj.get("index")
                if not isinstance(index, int) or index < lo:
                    continue
                if index >= hi:
                    return
                yield obj

    # -- progress index ---------------------------------------------------

    def _load_index(self) -> dict:
        path = self.run_dir / self.INDEX
        if not path.exists():
            return {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {}
        if index.get("fingerprint") != self.fingerprint:
            return {}
        return index

    def refresh_index(self) -> dict:
        """Recount every shard from disk and rewrite the index cache.

        The index is purely derived state — losing or corrupting it
        costs a rescan, never data.
        """
        compacted = self._compacted_ids()
        shards_payload = {}
        for shard in self.shards:
            done = len(self.load_shard_records(shard))
            shards_payload[str(shard.shard_id)] = {
                "lo": shard.lo,
                "hi": shard.hi,
                "done": done,
            }
        payload = {
            "kind": "fleet-index",
            "fingerprint": self.fingerprint,
            "shard_size": self.shard_size,
            "compacted": compacted,
            "shards": shards_payload,
        }
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.run_dir / self.INDEX, payload)
        return payload

    def mark_shard(self, shard: ShardSpec, done: int) -> None:
        """Record one shard's durable progress in the index cache."""
        index = self._load_index()
        if not index:
            index = {
                "kind": "fleet-index",
                "fingerprint": self.fingerprint,
                "shard_size": self.shard_size,
                "compacted": [],
                "shards": {},
            }
        index.setdefault("shards", {})[str(shard.shard_id)] = {
            "lo": shard.lo,
            "hi": shard.hi,
            "done": done,
        }
        self.run_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write_json(self.run_dir / self.INDEX, index)

    def progress(self, recount: bool = False) -> List[ShardProgress]:
        """Per-shard progress, from the index cache or a fresh recount."""
        index = {} if recount else self._load_index()
        if not index:
            index = self.refresh_index()
        out = []
        for shard in self.shards:
            entry = index.get("shards", {}).get(str(shard.shard_id))
            done = entry["done"] if entry else 0
            out.append(
                ShardProgress(shard.shard_id, shard.lo, shard.hi, done)
            )
        return out

    def pending_shards(self, recount: bool = True) -> List[ShardSpec]:
        """Shards with unfinished trials (what submit/resume must run)."""
        by_id = {p.shard_id: p for p in self.progress(recount=recount)}
        return [s for s in self.shards if not by_id[s.shard_id].complete]

    def completed_trials(self) -> int:
        return sum(p.done for p in self.progress(recount=True))

    # -- streaming read path ----------------------------------------------

    def iter_completed(self) -> Iterator[Tuple[int, dict]]:
        """All finished trials in global index order, constant memory.

        Holds at most one shard's records in memory: shards are walked in
        id order (= index order, since ranges are contiguous) and each
        shard's records are sorted locally before yielding.
        """
        for shard in self.shards:
            records = self.load_shard_records(shard)
            for index in sorted(records):
                yield index, records[index]

    def iter_values(self) -> Iterator[Tuple[int, object]]:
        """Decoded trial values in global index order, constant memory."""
        decode = self.campaign.codec.decode
        for index, obj in self.iter_completed():
            yield index, decode(obj["value"])

    # -- compaction -------------------------------------------------------

    def compact(self) -> Path:
        """Fold every complete shard into the sorted compacted file.

        Streams shard-by-shard into a temp file and atomically replaces
        ``compacted.jsonl``, then deletes the folded segments and updates
        the index.  The result (plus live segments) is bit-equivalent to
        the pre-compaction state for every reader; for a fully complete
        run it is a valid single-file campaign journal.
        """
        progress = {p.shard_id: p for p in self.progress(recount=True)}
        already = set(self._compacted_ids())
        foldable = [
            s
            for s in self.shards
            if progress[s.shard_id].complete
            and (s.shard_id in already or self.segment_path(s).exists())
        ]
        self.run_dir.mkdir(parents=True, exist_ok=True)
        target = self.run_dir / self.COMPACTED
        tmp = target.with_suffix(".tmp")
        header = {
            "kind": "header",
            "name": self.campaign.name,
            "fingerprint": self.fingerprint,
            "n_trials": len(self.campaign),
        }
        folded: List[int] = []
        with open(tmp, "w", encoding="utf-8") as out:
            out.write(json.dumps(header, sort_keys=True) + "\n")
            for shard in foldable:
                records = self.load_shard_records(shard)
                for index in sorted(records):
                    out.write(json.dumps(records[index], sort_keys=True) + "\n")
                folded.append(shard.shard_id)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, target)
        index = self._load_index() or {
            "kind": "fleet-index",
            "fingerprint": self.fingerprint,
            "shard_size": self.shard_size,
            "shards": {},
        }
        index["compacted"] = sorted(folded)
        _atomic_write_json(self.run_dir / self.INDEX, index)
        for shard in self.shards:
            if shard.shard_id in folded:
                path = self.segment_path(shard)
                if path.exists():
                    path.unlink()
        return target
