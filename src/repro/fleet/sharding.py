"""Deterministic campaign sharding: the unit of fleet-scale dispatch.

A *shard* is a contiguous range of a campaign's trial indices, keyed by
the campaign fingerprint.  Because trials are pure functions of their
``(fn, config, seed)`` spec, a shard can be executed, retried, journaled,
and resumed independently of every other shard — the same batching axis
the trial-SIMD executor exploits (ROADMAP: batches = shards).

Shard boundaries are a pure function of ``(fingerprint, n_trials,
shard_size)``: re-planning the same campaign always yields the same
shards, so a killed fleet run re-plans on resume and every on-disk shard
segment still lines up.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

from ..exec.spec import Campaign

#: Default trials per shard; small enough that a shard's in-memory record
#: buffer stays bounded, large enough to amortize dispatch overhead.
DEFAULT_SHARD_SIZE = 256


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One contiguous trial-index range ``[lo, hi)`` of a campaign.

    ``fingerprint`` is the *campaign* fingerprint (not the shard's): it
    glues the shard to exactly one (configs, seeds, code-version) tuple,
    so a shard segment on disk can never be replayed against a campaign
    it does not belong to.
    """

    fingerprint: str
    shard_id: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi:
            raise ValueError(f"bad shard range [{self.lo}, {self.hi})")

    @property
    def n_trials(self) -> int:
        return self.hi - self.lo

    @property
    def key(self) -> str:
        """Stable on-disk name of this shard's segment."""
        return f"shard-{self.shard_id:06d}"

    def contains(self, index: int) -> bool:
        return self.lo <= index < self.hi


def plan_shards(
    campaign: Campaign,
    shard_size: int = DEFAULT_SHARD_SIZE,
    version: Optional[str] = None,
    fingerprint: Optional[str] = None,
) -> List[ShardSpec]:
    """Split ``campaign`` into contiguous shards of ``shard_size`` trials.

    Deterministic: the same campaign (same fingerprint) always produces
    the same boundaries, which is what makes independent resume sound.
    The last shard holds the remainder.  Pass ``fingerprint`` when the
    caller already computed it — hashing a 100k-trial campaign costs
    about a second, so callers that hold a store should not pay twice.
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    if fingerprint is None:
        fingerprint = campaign.fingerprint(version)
    total = len(campaign)
    return [
        ShardSpec(
            fingerprint=fingerprint,
            shard_id=shard_id,
            lo=lo,
            hi=min(lo + shard_size, total),
        )
        for shard_id, lo in enumerate(range(0, total, shard_size))
    ]


def shard_subcampaign(campaign: Campaign, shard: ShardSpec) -> Campaign:
    """The sub-campaign holding exactly the shard's trials.

    Trial ``i`` of the sub-campaign is trial ``shard.lo + i`` of the
    parent; the executor runs it unchanged, and the shard journal maps
    local indices back to global ones when it persists records.
    """
    if shard.hi > len(campaign):
        raise ValueError(
            f"shard [{shard.lo}, {shard.hi}) exceeds campaign "
            f"of {len(campaign)} trials"
        )
    return Campaign(
        name=f"{campaign.name}#{shard.shard_id}",
        fn=campaign.fn,
        configs=campaign.configs[shard.lo : shard.hi],
        seeds=campaign.seeds[shard.lo : shard.hi],
        codec=campaign.codec,
    )


def order_shards(
    shards: Sequence[ShardSpec],
    priority: Optional[Callable[[ShardSpec], float]] = None,
) -> List[ShardSpec]:
    """Shards in dispatch order: by ``priority`` (lower first), then id.

    ``priority`` is the fleet's placement knob — e.g. schedule shards
    whose trials fall in the datacenter's quiet hours first.  Ties (and
    the default) preserve shard order, keeping dispatch deterministic.
    """
    if priority is None:
        return sorted(shards, key=lambda s: s.shard_id)
    return sorted(shards, key=lambda s: (priority(s), s.shard_id))
