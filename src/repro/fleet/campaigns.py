"""Fleet-scale campaign builders: cheap Monte-Carlo trials, placed trials.

Fleet runs live or die by trial cost: a 100k-trial campaign of full
eviction-set constructions is hours of compute, but the paper's
*statistical* questions — survival probabilities under background noise,
co-location odds, quiet-hours effects — reduce to trials that cost
microseconds.  This module packages those:

* :func:`noise_window_trial` — the exponential-survival Monte-Carlo at
  the heart of Sections 4-6: monitor one SF set for a window ``W`` under
  Poisson background rate ``r``; the set survives undisturbed with
  probability ``exp(-rW)``.  One Poisson draw per trial.
* :func:`placement_campaign` — the same trial, but each trial's rate
  comes from a :class:`repro.fleet.datacenter.Datacenter` placement
  (host occupancy x diurnal factor at the placed hour): sweeping
  placement as a first-class campaign axis.

Heavy trials (construction, end-to-end pairs) shard through the fleet
unchanged — see ``CLI_CAMPAIGNS`` reuse in :mod:`repro.fleet.service`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from .._util import make_rng, poisson
from ..config import NOISE_PRESETS
from ..exec.spec import Campaign, dataclass_codec, seed_stream
from .datacenter import Datacenter, DatacenterConfig


@dataclasses.dataclass(frozen=True)
class NoiseWindowConfig:
    """One noise-survival Monte-Carlo trial's parameters.

    ``rate_per_ms`` is the background access rate on the monitored set
    (the paper's Figure 2 metric); ``window_ms`` the exposure window
    (one TestEviction / prime / probe).  ``host_id``/``hour`` are carried
    through from placement so aggregates can be cut by them.
    """

    rate_per_ms: float
    window_ms: float = 0.5
    host_id: int = -1
    hour: int = -1
    co_located: bool = True


@dataclasses.dataclass
class NoiseWindowSample:
    """One window's outcome: how often the set stayed clean."""

    events: int
    survived: bool
    rate_per_ms: float


def noise_window_trial(cfg: NoiseWindowConfig, seed: int) -> NoiseWindowSample:
    """Draw one exposure window against the Poisson background.

    ``survived`` (no foreign insertion in the window) is the event whose
    probability decays exponentially with window duration — the property
    every construction/monitoring result in the paper hinges on.
    """
    rng = make_rng(("noise-mc", seed))
    lam = cfg.rate_per_ms * cfg.window_ms
    events = poisson(rng, lam) if cfg.co_located else 0
    return NoiseWindowSample(
        events=events,
        survived=(events == 0 and cfg.co_located),
        rate_per_ms=cfg.rate_per_ms,
    )


def noise_mc_campaign(
    env: str = "cloud",
    trials: int = 100_000,
    window_ms: float = 0.5,
    base_seed: int = 0,
    name: Optional[str] = None,
) -> Campaign:
    """A flat noise-survival campaign at one named environment's rate."""
    noise = NOISE_PRESETS[env if env in NOISE_PRESETS else "cloud"]
    cfg = NoiseWindowConfig(
        rate_per_ms=noise.llc_accesses_per_ms_per_set, window_ms=window_ms
    )
    return Campaign.build(
        name=name or f"noise-mc-{env}",
        fn=noise_window_trial,
        config=cfg,
        trials=trials,
        base_seed=base_seed,
        codec=dataclass_codec(NoiseWindowSample),
    )


def placement_campaign(
    datacenter: Optional[Datacenter] = None,
    trials: int = 10_000,
    window_ms: float = 0.5,
    hours: Tuple[int, ...] = tuple(range(24)),
    base_seed: int = 0,
    name: str = "dc-placement",
) -> Campaign:
    """Noise-survival trials placed across the simulated datacenter.

    Trial ``i`` gets placement ``i`` (host + hour, round-robin over
    ``hours``); its background rate is that host's occupancy-and-diurnal
    rate at that hour.  The resulting aggregate answers the paper's
    quiet-hours question at fleet scale, and shard priorities can
    schedule the quiet hours first (:func:`quiet_hours_priority`).
    """
    datacenter = datacenter or Datacenter(DatacenterConfig(), seed=base_seed)
    configs = []
    for placement in datacenter.placements(trials, hours=hours):
        noise = datacenter.noise_at(placement.host_id, placement.hour)
        configs.append(
            NoiseWindowConfig(
                rate_per_ms=noise.llc_accesses_per_ms_per_set,
                window_ms=window_ms,
                host_id=placement.host_id,
                hour=placement.hour,
                co_located=placement.co_located,
            )
        )
    return Campaign(
        name=name,
        fn=noise_window_trial,
        configs=tuple(configs),
        seeds=seed_stream(base_seed, trials, tag=name),
        codec=dataclass_codec(NoiseWindowSample),
    )


def quiet_hours_priority(campaign: Campaign, datacenter: Datacenter):
    """Shard priority: dispatch shards with the quietest mean hour first.

    Works on campaigns whose configs carry an ``hour`` (placement
    campaigns); other shards keep equal priority.  Deterministic, so the
    dispatch order is stable across resumes.
    """
    diurnal = datacenter.cfg.diurnal

    def priority(shard) -> float:
        factors = [
            diurnal[cfg.hour % 24]
            for cfg in campaign.configs[shard.lo : shard.hi]
            if getattr(cfg, "hour", -1) >= 0
        ]
        if not factors:
            return 1.0
        return sum(factors) / len(factors)

    return priority


# -- CLI builders (python -m repro fleet submit / python -m repro campaign) --


def _cli_noise_mc(args) -> Campaign:
    return noise_mc_campaign(
        env=getattr(args, "campaign_env", "cloud"),
        trials=args.trials,
        window_ms=getattr(args, "window_ms", 0.5),
        base_seed=args.seed,
    )


def _cli_placement(args) -> Campaign:
    datacenter = Datacenter(
        DatacenterConfig(n_hosts=getattr(args, "hosts", 256)),
        seed=getattr(args, "dc_seed", 0),
    )
    return placement_campaign(
        datacenter,
        trials=args.trials,
        window_ms=getattr(args, "window_ms", 0.5),
        base_seed=args.seed,
    )


#: Fleet-native campaign builders, merged with the generic CLI campaigns
#: by repro.fleet.service.
FLEET_CAMPAIGNS: Dict[str, object] = {
    "noise-mc": _cli_noise_mc,
    "dc-placement": _cli_placement,
}
