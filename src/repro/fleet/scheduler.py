"""The asyncio fleet scheduler: campaigns as a long-running service.

One scheduler drives one campaign run to completion (or graceful drain)
over the existing process-pool executor:

* shards flow through a **bounded priority queue** (``queue_depth``) —
  the placement/priority knob reorders within the buffered window and
  the bound keeps planning memory constant;
* ``max_inflight`` worker tasks execute shards in a thread pool, each
  shard running :func:`repro.exec.run_campaign` against its own store
  segment (so per-trial durability and crash-retry come from the
  engine, unchanged);
* finished-shard summaries pass through a **bounded results queue** to
  the consumer, which folds live aggregates and updates the store
  index — a slow consumer therefore stalls dispatch instead of piling
  results in memory (per-shard backpressure);
* a shard whose workers crashed retries with exponential backoff
  (``shard_retries`` / ``retry_backoff_s``) before its failures stand;
* :meth:`FleetScheduler.request_drain` stops new dispatch, finishes
  in-flight shards, flushes, and returns a partial report — the
  graceful-shutdown path (SIGINT/SIGTERM in the CLI).

Everything the scheduler does is restartable: trial results are durable
in the store as shards execute, so a SIGKILL at any point loses at most
each in-flight shard's unflushed tail, and ``resume`` re-plans the same
shards and completes the remainder.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Union

from ..analysis.streaming import CampaignAggregate
from ..exec.executor import ExecPolicy, run_campaign
from ..exec.spec import Campaign
from .sharding import DEFAULT_SHARD_SIZE, ShardSpec, order_shards, shard_subcampaign
from .store import DEFAULT_FLEET_DIR, FleetStore


@dataclasses.dataclass(frozen=True)
class FleetPolicy:
    """How the fleet runs a campaign (the campaign says *what* runs).

    ``jobs_per_shard`` sizes each shard's process pool (CPU fan-out);
    ``max_inflight`` bounds concurrently executing shards (pipeline
    overlap); ``queue_depth`` / ``result_buffer`` bound the dispatch and
    results queues (backpressure).  ``batch`` groups each shard's trials
    into lockstep batches (``None`` defers to ``REPRO_BATCH``; see
    :class:`repro.exec.ExecPolicy`), making the shard the natural batch
    axis.  ``stop_after_shards`` is an ops/test knob: drain gracefully
    once that many shards finished this run.
    """

    shard_size: int = DEFAULT_SHARD_SIZE
    max_inflight: int = 2
    jobs_per_shard: int = 1
    queue_depth: int = 8
    result_buffer: int = 4
    shard_retries: int = 2
    retry_backoff_s: float = 0.05
    timeout_s: Optional[float] = None
    trial_retries: int = 1
    flush_every: int = 64
    batch: Optional[int] = None
    stop_after_shards: Optional[int] = None

    def __post_init__(self) -> None:
        for field in ("shard_size", "max_inflight", "jobs_per_shard",
                      "queue_depth", "result_buffer", "flush_every"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")


@dataclasses.dataclass
class ShardOutcome:
    """What one executed shard reports back to the consumer."""

    shard: ShardSpec
    ok: int = 0
    failed: int = 0
    cached: int = 0
    attempts: int = 1
    elapsed_s: float = 0.0
    error: Optional[str] = None
    #: Trial-prefix store traffic (``REPRO_PREFIX_CACHE=1``): shard
    #: retries and resumes re-run identical (config, seed) specs, whose
    #: construction prefixes restore from checkpoint instead of
    #: re-simulating (:mod:`repro.exec.prefix`).
    prefix_hits: int = 0
    prefix_misses: int = 0
    records: List[object] = dataclasses.field(default_factory=list)

    @property
    def done(self) -> int:
        return self.ok + self.cached


@dataclasses.dataclass
class FleetReport:
    """One scheduler run's outcome (not the campaign's full history)."""

    run_id: str
    fingerprint: str
    total_trials: int
    n_shards: int
    completed_trials: int = 0
    failed_trials: int = 0
    shards_executed: int = 0
    shards_skipped: int = 0
    shards_failed: int = 0
    shard_retries: int = 0
    drained: bool = False
    elapsed_s: float = 0.0
    peak_dispatch_ahead: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0

    @property
    def complete(self) -> bool:
        return self.completed_trials >= self.total_trials


class FleetScheduler:
    """Async shard scheduler over one campaign and its results store."""

    def __init__(
        self,
        campaign: Campaign,
        store: FleetStore,
        policy: Optional[FleetPolicy] = None,
        priority: Optional[Callable[[ShardSpec], float]] = None,
        reporter: Optional["ProgressReporter"] = None,
        on_shard: Optional[
            Callable[[ShardOutcome], Union[None, Awaitable[None]]]
        ] = None,
    ) -> None:
        self.campaign = campaign
        self.store = store
        self.policy = policy or FleetPolicy()
        self.priority = priority
        self.reporter = reporter
        self.on_shard = on_shard
        self.aggregate = CampaignAggregate()
        self._drain_requested = False
        self._drain_event: Optional[asyncio.Event] = None
        # Backpressure instrumentation: shards started minus shards whose
        # results the consumer has fully processed, and its peak.
        self._started = 0
        self._consumed = 0
        self._peak_ahead = 0

    # -- external control --------------------------------------------------

    def request_drain(self) -> None:
        """Stop dispatching new shards; finish in-flight ones and return."""
        self._drain_requested = True
        if self._drain_event is not None:
            self._drain_event.set()

    @property
    def draining(self) -> bool:
        return self._drain_requested

    # -- shard execution (runs in a worker thread) -------------------------

    def _run_shard_once(self, shard: ShardSpec) -> ShardOutcome:
        sub = shard_subcampaign(self.campaign, shard)
        journal = self.store.shard_journal(
            shard, flush_every=self.policy.flush_every
        )
        from ..exec.prefix import prefix_enabled, thread_store

        prefix_before = (
            dict(thread_store().stats()) if prefix_enabled() else None
        )
        started = time.perf_counter()
        try:
            result = run_campaign(
                sub,
                ExecPolicy(
                    jobs=self.policy.jobs_per_shard,
                    timeout_s=self.policy.timeout_s,
                    max_retries=self.policy.trial_retries,
                    batch=self.policy.batch,
                ),
                journal=journal,
            )
        finally:
            journal.close()
        outcome = ShardOutcome(shard=shard, elapsed_s=time.perf_counter() - started)
        if prefix_before is not None:
            after = thread_store().stats()
            outcome.prefix_hits = after["hits"] - prefix_before["hits"]
            outcome.prefix_misses = after["misses"] - prefix_before["misses"]
        for record in result.records:
            if record.cached:
                outcome.cached += 1
            elif record.ok:
                outcome.ok += 1
            else:
                outcome.failed += 1
            outcome.records.append(record)
        return outcome

    async def _execute_with_retry(self, shard: ShardSpec, pool) -> ShardOutcome:
        """Run a shard, retrying crashed/failed trials with backoff.

        The store segment persists finished trials across attempts, so a
        retry only re-runs the trials that did not complete.
        """
        loop = asyncio.get_running_loop()
        outcome: Optional[ShardOutcome] = None
        for attempt in range(self.policy.shard_retries + 1):
            if attempt:
                await asyncio.sleep(
                    self.policy.retry_backoff_s * (2 ** (attempt - 1))
                )
            try:
                outcome = await loop.run_in_executor(
                    pool, self._run_shard_once, shard
                )
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                outcome = ShardOutcome(
                    shard=shard, error=f"{type(exc).__name__}: {exc}"
                )
            outcome.attempts = attempt + 1
            if outcome.error is None and outcome.failed == 0:
                break
        return outcome

    # -- the service loop --------------------------------------------------

    async def run(
        self, shards: Optional[Sequence[ShardSpec]] = None
    ) -> FleetReport:
        """Drive pending shards to completion (or drain) and report."""
        policy = self.policy
        started_at = time.perf_counter()
        if shards is None:
            shards = self.store.pending_shards()
        plan = order_shards(shards, self.priority)
        already_done = self.store.completed_trials()

        report = FleetReport(
            run_id=self.store.run_id,
            fingerprint=self.store.fingerprint,
            total_trials=len(self.campaign),
            n_shards=len(self.store.shards),
        )
        if self.reporter is not None:
            self.reporter.start(
                f"fleet:{self.campaign.name}",
                total=len(self.campaign),
                cached=already_done,
            )

        self._drain_event = asyncio.Event()
        if self._drain_requested:
            self._drain_event.set()
        queue: asyncio.PriorityQueue = asyncio.PriorityQueue(
            maxsize=policy.queue_depth
        )
        results: asyncio.Queue = asyncio.Queue(maxsize=policy.result_buffer)
        n_workers = min(policy.max_inflight, max(1, len(plan)))

        async def feeder() -> None:
            rank = {s.shard_id: i for i, s in enumerate(plan)}
            for shard in sorted(plan, key=lambda s: s.shard_id):
                if self._drain_event.is_set():
                    break
                await queue.put((rank[shard.shard_id], shard.shard_id, shard))
            for _ in range(n_workers):
                await queue.put((len(plan), -1, None))

        async def worker() -> None:
            while True:
                _, _, shard = await queue.get()
                if shard is None:
                    break
                if self._drain_event.is_set():
                    report.shards_skipped += 1
                    continue
                self._started += 1
                self._peak_ahead = max(
                    self._peak_ahead, self._started - self._consumed
                )
                outcome = await self._execute_with_retry(shard, pool)
                await results.put(outcome)

        async def consumer() -> None:
            while True:
                outcome = await results.get()
                if outcome is None:
                    break
                self._account(outcome, report)
                if self.on_shard is not None:
                    maybe = self.on_shard(outcome)
                    if asyncio.iscoroutine(maybe):
                        await maybe
                self._consumed += 1
                if (
                    policy.stop_after_shards is not None
                    and report.shards_executed >= policy.stop_after_shards
                ):
                    self.request_drain()

        with ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="fleet-shard"
        ) as pool:
            feeder_task = asyncio.create_task(feeder())
            worker_tasks = [
                asyncio.create_task(worker()) for _ in range(n_workers)
            ]
            consumer_task = asyncio.create_task(consumer())
            await asyncio.gather(feeder_task, *worker_tasks)
            await results.put(None)
            await consumer_task

        report.completed_trials = self.store.completed_trials()
        report.drained = self._drain_requested and not report.complete
        report.elapsed_s = time.perf_counter() - started_at
        report.peak_dispatch_ahead = self._peak_ahead
        if self.reporter is not None:
            self.reporter.finish(self.reporter.snapshot())
        return report

    def _account(self, outcome: ShardOutcome, report: FleetReport) -> None:
        report.shards_executed += 1
        report.shard_retries += outcome.attempts - 1
        if outcome.error is not None or outcome.failed:
            report.shards_failed += 1
        report.failed_trials += outcome.failed
        report.prefix_hits += outcome.prefix_hits
        report.prefix_misses += outcome.prefix_misses
        for record in outcome.records:
            if record.ok and not record.cached:
                self.aggregate.push(record.value)
            if self.reporter is not None and not record.cached:
                self.reporter.update(record)
        outcome.records = []  # the store holds them; keep RSS constant


def run_fleet(
    campaign: Campaign,
    root=DEFAULT_FLEET_DIR,
    policy: Optional[FleetPolicy] = None,
    priority: Optional[Callable[[ShardSpec], float]] = None,
    reporter: Optional["ProgressReporter"] = None,
    meta: Optional[Dict] = None,
) -> "tuple[FleetReport, FleetStore]":
    """Synchronous front door: shard, schedule, and run one campaign.

    Creates (or reopens) the campaign's fleet store under ``root``,
    persists run metadata, and drives every pending shard.  Safe to call
    repeatedly: finished work is never redone.
    """
    policy = policy or FleetPolicy()
    store = FleetStore(root, campaign, policy.shard_size)
    store.write_meta(meta)
    scheduler = FleetScheduler(
        campaign, store, policy, priority=priority, reporter=reporter
    )
    report = asyncio.run(scheduler.run())
    return report, store
