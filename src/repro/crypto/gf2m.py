"""Arithmetic in GF(2^m) with a polynomial basis.

Field elements are Python ints interpreted as polynomials over GF(2)
(bit i = coefficient of x^i).  The field is defined by an irreducible
reduction polynomial, conventionally a trinomial or pentanomial.

All the operations ECDSA over a binary curve needs are here: addition
(XOR), carry-less multiplication with reduction, fast squaring via a
byte-spread table, inversion by the binary extended Euclidean algorithm,
trace and half-trace (for solving the point-decompression quadratic
``z^2 + z = c``).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import CryptoError

#: Precomputed byte -> 16-bit "spread" (insert a zero between bits), the
#: inner loop of GF(2^m) squaring.
_SQUARE_SPREAD = tuple(
    sum(((b >> i) & 1) << (2 * i) for i in range(8)) for b in range(256)
)


def _spread_bits(x: int) -> int:
    """Interleave zero bits: bit i of x moves to bit 2i (square of a poly)."""
    out = 0
    shift = 0
    while x:
        out |= _SQUARE_SPREAD[x & 0xFF] << shift
        x >>= 8
        shift += 16
    return out


class GF2m:
    """The field GF(2^m) defined by a reduction polynomial.

    Args:
        m: Extension degree.
        reduction_terms: Exponents of the reduction polynomial's terms
            *besides* x^m and 1 — e.g. ``(74,)`` for the trinomial
            x^233 + x^74 + 1.
    """

    def __init__(self, m: int, reduction_terms: Iterable[int]) -> None:
        if m < 2:
            raise CryptoError("extension degree must be >= 2")
        terms = tuple(sorted(set(reduction_terms), reverse=True))
        if any(t <= 0 or t >= m for t in terms):
            raise CryptoError("reduction term exponents must be in (0, m)")
        self.m = m
        self.poly = (1 << m) | 1
        for t in terms:
            self.poly |= 1 << t
        self._mask = (1 << m) - 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GF2m(m={self.m})"

    def __eq__(self, other) -> bool:
        return isinstance(other, GF2m) and self.poly == other.poly

    def __hash__(self) -> int:
        return hash(("GF2m", self.poly))

    # -- Basic element handling ----------------------------------------------

    @property
    def order(self) -> int:
        """Number of field elements, 2^m."""
        return 1 << self.m

    def is_element(self, x: int) -> bool:
        return 0 <= x < (1 << self.m)

    def random_element(self, rng) -> int:
        return rng.getrandbits(self.m) & self._mask

    # -- Ring operations -----------------------------------------------------

    @staticmethod
    def add(a: int, b: int) -> int:
        """Addition (= subtraction) is XOR."""
        return a ^ b

    def reduce(self, x: int) -> int:
        """Reduce a polynomial of any degree modulo the field polynomial."""
        m = self.m
        poly = self.poly
        deg = x.bit_length() - 1
        while deg >= m:
            x ^= poly << (deg - m)
            deg = x.bit_length() - 1
        return x

    def mul(self, a: int, b: int) -> int:
        """Carry-less multiply then reduce."""
        if a == 0 or b == 0:
            return 0
        # Iterate over the sparser operand's set bits.
        if a.bit_count() < b.bit_count():
            a, b = b, a
        acc = 0
        shift = 0
        while b:
            low = b & -b
            idx = low.bit_length() - 1
            acc ^= a << idx
            b ^= low
        return self.reduce(acc)

    def sqr(self, a: int) -> int:
        """Squaring is linear in GF(2^m): spread bits then reduce."""
        return self.reduce(_spread_bits(a))

    def inv(self, a: int) -> int:
        """Multiplicative inverse via the binary extended Euclidean algorithm."""
        if a == 0:
            raise CryptoError("zero has no inverse")
        u, v = self.reduce(a), self.poly
        g1, g2 = 1, 0
        while u != 1:
            j = u.bit_length() - v.bit_length()
            if j < 0:
                u, v = v, u
                g1, g2 = g2, g1
                j = -j
            u ^= v << j
            g1 ^= g2 << j
        return self.reduce(g1)

    def div(self, a: int, b: int) -> int:
        """a / b."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """a**e by square-and-multiply (e >= 0)."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = 1
        base = self.reduce(a)
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.sqr(base)
            e >>= 1
        return result

    # -- Quadratic equations (point decompression) -----------------------------

    def trace(self, c: int) -> int:
        """The absolute trace Tr(c) = sum of c^(2^i) for i in [0, m)."""
        t = c
        acc = c
        for _ in range(self.m - 1):
            t = self.sqr(t)
            acc ^= t
        return acc  # always 0 or 1 for a valid trace

    def half_trace(self, c: int) -> int:
        """Half-trace H(c) (odd m only); solves z^2 + z = c when Tr(c) = 0."""
        if self.m % 2 == 0:
            raise CryptoError("half-trace requires odd extension degree")
        z = c
        for _ in range((self.m - 1) // 2):
            z = self.sqr(self.sqr(z))
            z ^= c
        return z

    def solve_quadratic(self, c: int) -> Tuple[int, int]:
        """Both solutions of z^2 + z = c, or raise if none exist."""
        if c == 0:
            return 0, 1
        if self.trace(c) != 0:
            raise CryptoError("z^2 + z = c has no solution (trace is 1)")
        z = self.half_trace(c)
        if self.sqr(z) ^ z != self.reduce(c):
            raise CryptoError("half-trace failed; is m odd and c reduced?")
        return z, z ^ 1
