"""From-scratch binary-field elliptic-curve cryptography.

The paper's victim is the Montgomery-ladder scalar multiplication of
OpenSSL 1.0.1e's ECDSA over a binary curve (sect571r1).  This subpackage
implements the whole stack so the victim executes *real* signing
operations:

* :mod:`repro.crypto.gf2m` — GF(2^m) arithmetic (polynomial basis).
* :mod:`repro.crypto.curves` — binary (Koblitz) curves with group orders
  derived from the Frobenius trace, so no constants need to be trusted.
* :mod:`repro.crypto.ec2m` — affine point arithmetic and the López–Dahab
  Montgomery ladder with the exact secret-dependent branch structure of
  OpenSSL's ``ec_GF2m_montgomery_point_multiply`` (Figure 8a).
* :mod:`repro.crypto.ecdsa` — ECDSA keygen/sign/verify and the
  key-recovery identities that make nonce leakage fatal.

Substitution note (see DESIGN.md): we use the Koblitz curves K-163/K-233/
K-571 instead of sect571r1 because their group orders are *computable*
(via the Lucas recurrence on the Frobenius trace) rather than memorized;
the ladder, its leak, and the nonce length are unchanged.
"""

from .curves import BinaryCurve, curve_by_name
from .ec2m import (
    Point,
    ladder_scalar_mult,
    ladder_steps,
    point_add,
    point_double,
    scalar_mult,
)
from .ecdsa import (
    EcdsaKeyPair,
    EcdsaSignature,
    generate_keypair,
    recover_nonce,
    recover_private_key,
    sign,
    sign_with_nonce,
    verify,
)
from .gf2m import GF2m
from .hnp import (
    HnpSample,
    leading_bits_from_extraction,
    recover_private_key_hnp,
    sample_from_signature,
    samples_needed,
)
from .lattice import lll_reduce, shortest_vector

_LAZY_CURVES = {"K163": "K-163", "K233": "K-233", "K571": "K-571", "KTEST": "K-TEST"}


def __getattr__(attr: str):
    """Lazily construct the named curves on first attribute access."""
    if attr in _LAZY_CURVES:
        return curve_by_name(_LAZY_CURVES[attr])
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")


__all__ = [
    "BinaryCurve",
    "HnpSample",
    "leading_bits_from_extraction",
    "lll_reduce",
    "recover_private_key_hnp",
    "sample_from_signature",
    "samples_needed",
    "shortest_vector",
    "EcdsaKeyPair",
    "EcdsaSignature",
    "GF2m",
    "K163",
    "K233",
    "K571",
    "KTEST",
    "Point",
    "curve_by_name",
    "generate_keypair",
    "ladder_scalar_mult",
    "ladder_steps",
    "point_add",
    "point_double",
    "recover_nonce",
    "recover_private_key",
    "scalar_mult",
    "sign",
    "sign_with_nonce",
    "verify",
]
