"""ECDSA over binary curves, with the nonce-leak identities.

Signing uses the Montgomery ladder for ``k * G`` — the vulnerable code path
— and exposes the same ``observer`` hook so the victim model can emit the
per-bit fetch schedule while producing *real* signatures.

The attack's endgame is also here: with a fully recovered nonce the private
key falls out of one signature (:func:`recover_private_key`); with partial
nonce bits across signatures the standard lattice attacks of the paper's
references apply (out of scope — the paper itself stops at nonce bits).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import CryptoError
from .curves import BinaryCurve
from .ec2m import ladder_scalar_mult, point_add, scalar_mult


@dataclass(frozen=True)
class EcdsaSignature:
    """An (r, s) signature pair."""

    r: int
    s: int


@dataclass(frozen=True)
class EcdsaKeyPair:
    """Private scalar d and public point Q = d*G."""

    curve: BinaryCurve
    d: int
    qx: int
    qy: int

    @property
    def public_point(self):
        return (self.qx, self.qy)


def hash_to_int(message: bytes, curve: BinaryCurve) -> int:
    """SHA-256 digest truncated to the bit length of the subgroup order."""
    digest = hashlib.sha256(message).digest()
    e = int.from_bytes(digest, "big")
    excess = max(0, e.bit_length() - curve.n.bit_length())
    return e >> excess


def generate_keypair(curve: BinaryCurve, rng: random.Random) -> EcdsaKeyPair:
    """Generate a key pair with d uniform in [1, n)."""
    d = rng.randrange(1, curve.n)
    q = scalar_mult(curve, d, curve.generator)
    if q is None:
        raise CryptoError("degenerate key (d*G = infinity); n is wrong")
    return EcdsaKeyPair(curve, d, q[0], q[1])


def sign_with_nonce(
    keypair: EcdsaKeyPair,
    message: bytes,
    k: int,
    observer: Optional[Callable[[int, int], None]] = None,
) -> EcdsaSignature:
    """Sign with an explicit nonce ``k`` (the victim's hot loop).

    ``observer`` receives each ladder iteration's (index, bit) — the
    instrumentation hook of Section 7.1 ("purely for validation purposes").
    Raises if the nonce is degenerate (r = 0 or s = 0), in which case the
    caller draws a fresh nonce, exactly as the real implementation retries.
    """
    curve = keypair.curve
    if not 1 <= k < curve.n:
        raise CryptoError("nonce must be in [1, n)")
    point = ladder_scalar_mult(curve, k, curve.generator, observer=observer)
    if point is None:
        raise CryptoError("k*G is infinity")
    r = point[0] % curve.n
    if r == 0:
        raise CryptoError("degenerate nonce (r = 0); retry with a fresh k")
    e = hash_to_int(message, curve)
    s = (pow(k, -1, curve.n) * (e + r * keypair.d)) % curve.n
    if s == 0:
        raise CryptoError("degenerate nonce (s = 0); retry with a fresh k")
    return EcdsaSignature(r, s)


def sign(
    keypair: EcdsaKeyPair,
    message: bytes,
    rng: random.Random,
    observer: Optional[Callable[[int, int], None]] = None,
):
    """Sign with a random per-signature nonce; returns (signature, nonce).

    The nonce is returned so experiments can keep ground truth; a real
    victim would discard it — that it can be *observed through the cache*
    is the whole point of the paper.
    """
    while True:
        k = rng.randrange(1, keypair.curve.n)
        try:
            return sign_with_nonce(keypair, message, k, observer=observer), k
        except CryptoError:
            continue


def verify(
    curve: BinaryCurve, public_point, message: bytes, sig: EcdsaSignature
) -> bool:
    """Standard ECDSA verification."""
    if not (1 <= sig.r < curve.n and 1 <= sig.s < curve.n):
        return False
    e = hash_to_int(message, curve)
    w = pow(sig.s, -1, curve.n)
    u1 = (e * w) % curve.n
    u2 = (sig.r * w) % curve.n
    point = point_add(
        curve,
        scalar_mult(curve, u1, curve.generator),
        scalar_mult(curve, u2, public_point),
    )
    if point is None:
        return False
    return point[0] % curve.n == sig.r


def recover_private_key(
    curve: BinaryCurve, message: bytes, sig: EcdsaSignature, k: int
) -> int:
    """d = (s*k - e) / r mod n — one known nonce gives the private key."""
    e = hash_to_int(message, curve)
    return ((sig.s * k - e) * pow(sig.r, -1, curve.n)) % curve.n


def recover_nonce(
    curve: BinaryCurve, message: bytes, sig: EcdsaSignature, d: int
) -> int:
    """k = (e + r*d) / s mod n — ground-truth nonce from the private key."""
    e = hash_to_int(message, curve)
    return ((e + sig.r * d) * pow(sig.s, -1, curve.n)) % curve.n
