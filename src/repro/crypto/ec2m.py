"""Point arithmetic on binary curves, including the vulnerable ladder.

Two scalar multiplications are provided:

* :func:`scalar_mult` — affine double-and-add, used for verification and
  parameter derivation (not secret-dependent in any way we model).
* :func:`ladder_scalar_mult` — a faithful port of OpenSSL 1.0.1e's
  ``ec_GF2m_montgomery_point_multiply`` (López–Dahab X/Z Montgomery
  ladder).  Its per-iteration branch on the scalar bit —

  .. code-block:: c

      if (BN_is_bit_set(scalar, i)) { Madd(x1,z1, ...); Mdouble(x2,z2); }
      else                          { Madd(x2,z2, ...); Mdouble(x1,z1); }

  — is exactly the secret-dependent control flow of the paper's Figure 8a.
  An ``observer`` callback fires once per iteration with the bit value so
  the victim model can emit the corresponding instruction-fetch schedule.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import CryptoError
from .curves import BinaryCurve

#: A point is an (x, y) tuple of field elements; None is the point at infinity.
Point = Optional[Tuple[int, int]]


def point_neg(curve: BinaryCurve, p: Point) -> Point:
    """-(x, y) = (x, x + y) on a binary curve."""
    if p is None:
        return None
    x, y = p
    return (x, x ^ y)


def point_double(curve: BinaryCurve, p: Point) -> Point:
    """Affine doubling."""
    if p is None:
        return None
    f = curve.field
    x, y = p
    if x == 0:
        return None  # (0, y) has order 2
    lam = x ^ f.div(y, x)
    x3 = f.sqr(lam) ^ lam ^ curve.a
    y3 = f.sqr(x) ^ f.mul(lam ^ 1, x3)
    return (x3, y3)


def point_add(curve: BinaryCurve, p: Point, q: Point) -> Point:
    """Affine addition with all edge cases."""
    if p is None:
        return q
    if q is None:
        return p
    f = curve.field
    x1, y1 = p
    x2, y2 = q
    if x1 == x2:
        if y1 == y2:
            return point_double(curve, p)
        return None  # q == -p
    lam = f.div(y1 ^ y2, x1 ^ x2)
    x3 = f.sqr(lam) ^ lam ^ x1 ^ x2 ^ curve.a
    y3 = f.mul(lam, x1 ^ x3) ^ x3 ^ y1
    return (x3, y3)


def scalar_mult(curve: BinaryCurve, k: int, p: Point) -> Point:
    """Double-and-add scalar multiplication (reference implementation)."""
    if p is None or k == 0:
        return None
    if k < 0:
        return scalar_mult(curve, -k, point_neg(curve, p))
    result: Point = None
    addend = p
    while k:
        if k & 1:
            result = point_add(curve, result, addend)
        addend = point_double(curve, addend)
        k >>= 1
    return result


# ---------------------------------------------------------------------------
# The Montgomery ladder (the victim's code path)
# ---------------------------------------------------------------------------


def _mdouble(curve: BinaryCurve, x: int, z: int) -> Tuple[int, int]:
    """López–Dahab Mdouble: (X, Z) -> (X^4 + b Z^4, X^2 Z^2)."""
    f = curve.field
    x2 = f.sqr(x)
    z2 = f.sqr(z)
    return f.sqr(x2) ^ f.mul(curve.b, f.sqr(z2)), f.mul(x2, z2)


def _madd(
    curve: BinaryCurve, px: int, x1: int, z1: int, x2: int, z2: int
) -> Tuple[int, int]:
    """López–Dahab Madd: adds (x2, z2) into (x1, z1) w.r.t. base x ``px``."""
    f = curve.field
    t = f.mul(x1, z2)
    u = f.mul(x2, z1)
    z_out = f.sqr(t ^ u)
    x_out = f.mul(px, z_out) ^ f.mul(t, u)
    return x_out, z_out


def _mxy(
    curve: BinaryCurve, px: int, py: int, x1: int, z1: int, x2: int, z2: int
) -> Point:
    """Recover the affine result from the two ladder accumulators."""
    f = curve.field
    if z1 == 0:
        return None
    if z2 == 0:
        return (px, px ^ py)
    sx1 = f.div(x1, z1)
    sx2 = f.div(x2, z2)
    t = sx1 ^ px
    num = f.mul(t, f.mul(t, sx2 ^ px) ^ f.sqr(px) ^ py)
    y1 = f.div(num, px) ^ py
    return (sx1, y1)


def ladder_scalar_mult(
    curve: BinaryCurve,
    k: int,
    p: Point,
    observer: Optional[Callable[[int, int], None]] = None,
) -> Point:
    """Montgomery-ladder k*P with OpenSSL 1.0.1e's structure.

    ``observer(iteration, bit)`` is invoked once per ladder iteration, in
    execution order, with the scalar bit being processed — this is the hook
    the victim model uses to emit the secret-dependent fetch schedule.
    The iteration count is ``k.bit_length() - 1`` (the top bit is implicit),
    as in the vulnerable implementation.
    """
    if p is None or k == 0:
        return None
    if k < 0:
        raise CryptoError("ladder requires a non-negative scalar")
    px, py = p
    if px == 0:
        # The ladder's Madd degenerates at x = 0; fall back (OpenSSL does
        # the same for special inputs).
        return scalar_mult(curve, k, p)
    f = curve.field
    x1, z1 = px, 1
    x2, z2 = _mdouble(curve, px, 1)
    for i in range(k.bit_length() - 2, -1, -1):
        bit = (k >> i) & 1
        if bit:
            x1, z1 = _madd(curve, px, x1, z1, x2, z2)
            x2, z2 = _mdouble(curve, x2, z2)
        else:
            x2, z2 = _madd(curve, px, x2, z2, x1, z1)
            x1, z1 = _mdouble(curve, x1, z1)
        if observer is not None:
            observer(k.bit_length() - 2 - i, bit)
    return _mxy(curve, px, py, x1, z1, x2, z2)


def ladder_steps(curve: BinaryCurve, k: int, p: Point) -> Tuple[Point, List[int]]:
    """Run the ladder and also return the processed bit sequence in order."""
    bits: List[int] = []
    result = ladder_scalar_mult(curve, k, p, observer=lambda i, b: bits.append(b))
    return result, bits
