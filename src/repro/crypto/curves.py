"""Binary elliptic curves with self-derived group parameters.

We use Koblitz (anomalous binary) curves ``y^2 + xy = x^3 + a*x^2 + 1``
with ``a in {0, 1}`` because their group order over GF(2^m) follows from
the Frobenius trace via a Lucas recurrence — no memorized NIST constants
are needed, everything is derived and checked at construction:

* ``#E(GF(2^m)) = 2^m + 1 - V_m`` with ``V_0 = 2``, ``V_1 = t``,
  ``V_{k+1} = t*V_k - 2*V_{k-1}``, where ``t = 1`` if ``a = 1`` else ``-1``.
* The cofactor is 2 for ``a = 1`` and 4 for ``a = 0``; the prime subgroup
  order is verified with Miller–Rabin.
* A generator is obtained by decompressing a random x-coordinate (solving
  ``z^2 + z = c`` with the half-trace) and multiplying by the cofactor.

The paper's victim curve is sect571r1; we substitute the same-size Koblitz
curve K-571 (571-bit nonces, identical ladder structure) — see DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from ..errors import CryptoError
from .gf2m import GF2m

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin with fixed small bases plus deterministic extra rounds."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(n)  # deterministic per candidate
    bases = list(_SMALL_PRIMES) + [rng.randrange(2, n - 1) for _ in range(rounds)]
    for a in bases:
        a %= n
        if a < 2:
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def frobenius_order(m: int, a: int) -> int:
    """#E(GF(2^m)) of the Koblitz curve E_a via the Lucas recurrence."""
    if a not in (0, 1):
        raise CryptoError("Koblitz curves have a in {0, 1}")
    t = 1 if a == 1 else -1
    v_prev, v = 2, t
    for _ in range(m - 1):
        v_prev, v = v, t * v - 2 * v_prev
    return (1 << m) + 1 - v


@dataclass(frozen=True)
class BinaryCurve:
    """y^2 + xy = x^3 + a*x^2 + b over GF(2^m), with a prime-order subgroup.

    Attributes:
        name: Curve label, e.g. ``"K-233"``.
        field: The underlying GF(2^m).
        a, b: Curve coefficients (b = 1 for Koblitz curves).
        gx, gy: Generator of the prime-order subgroup.
        n: Prime subgroup order (the nonce/keys live in [1, n)).
        h: Cofactor.
    """

    name: str
    field: GF2m
    a: int
    b: int
    gx: int
    gy: int
    n: int
    h: int

    @property
    def generator(self) -> Tuple[int, int]:
        return (self.gx, self.gy)

    @property
    def nonce_bits(self) -> int:
        """Bit length of the subgroup order = bits processed per signing."""
        return self.n.bit_length()

    def is_on_curve(self, point: Optional[Tuple[int, int]]) -> bool:
        """Whether ``point`` (None = infinity) satisfies the curve equation."""
        if point is None:
            return True
        f = self.field
        x, y = point
        lhs = f.sqr(y) ^ f.mul(x, y)
        rhs = f.mul(f.sqr(x), x) ^ f.mul(self.a, f.sqr(x)) ^ self.b
        return lhs == rhs

    def decompress_x(self, x: int) -> Tuple[int, int]:
        """A point (x, y) on the curve for the given x, if one exists."""
        f = self.field
        if x == 0:
            # y^2 = b -> y = sqrt(b) = b^(2^(m-1)).
            y = f.pow(self.b, 1 << (f.m - 1))
            return (0, y)
        # Substitute z = y/x: z^2 + z = x + a + b/x^2.
        c = x ^ self.a ^ f.div(self.b, f.sqr(x))
        z, _ = f.solve_quadratic(c)  # raises if no point at this x
        return (x, f.mul(z, x))


def _derive_generator(
    field: GF2m, a: int, b: int, n: int, h: int, seed: int
) -> Tuple[int, int]:
    """Find a generator of the order-n subgroup by cofactor multiplication."""
    from .ec2m import scalar_mult  # deferred: ec2m imports this module

    rng = random.Random(f"gen:{field.m}:{a}:{seed}")
    curve_stub = BinaryCurve("stub", field, a, b, 0, 1, n, h)
    while True:
        x = field.random_element(rng)
        if x == 0:
            continue
        try:
            point = curve_stub.decompress_x(x)
        except CryptoError:
            continue  # no point at this x (trace was 1)
        g = scalar_mult(curve_stub, h, point)
        if g is not None:
            return g


def _largest_prime_factor(n: int, limit: int = 1 << 22) -> Optional[int]:
    """Largest prime factor by trial division; None if out of reach."""
    remaining = n
    largest = None
    f = 2
    while f * f <= remaining and f < limit:
        while remaining % f == 0:
            largest = f if largest is None or f > largest else largest
            remaining //= f
        f += 1 if f == 2 else 2
    if remaining > 1:
        if is_probable_prime(remaining):
            return remaining
        return None
    return largest


@lru_cache(maxsize=None)
def koblitz_curve(m: int, a: int, reduction_terms: Tuple[int, ...], name: str) -> BinaryCurve:
    """Construct the Koblitz curve E_a over GF(2^m) with derived parameters."""
    field = GF2m(m, reduction_terms)
    order = frobenius_order(m, a)
    h = 2 if a == 1 else 4
    if order % h == 0 and is_probable_prime(order // h):
        n = order // h
    else:
        # Non-standard m (e.g. the tiny test curve): find the largest prime
        # factor by trial division and use the rest as cofactor.
        n = _largest_prime_factor(order)
        if n is None:
            raise CryptoError(
                f"cannot derive a prime subgroup order for m={m}, a={a}"
            )
        h = order // n
    gx, gy = _derive_generator(field, a, 1, n, h, seed=0)
    curve = BinaryCurve(name, field, a, 1, gx, gy, n, h)
    if not curve.is_on_curve((gx, gy)):
        raise CryptoError(f"derived generator is not on {name}")
    return curve


# Standard irreducible reduction polynomials (FIPS 186 / SEC 2).
_CURVE_SPECS = {
    "K-163": (163, 1, (7, 6, 3)),
    "K-233": (233, 0, (74,)),
    "K-571": (571, 0, (10, 5, 2)),
    # Tiny curve for exhaustive-style unit tests (x^17 + x^3 + 1).
    "K-TEST": (17, 1, (3,)),
}


def curve_by_name(name: str) -> BinaryCurve:
    """Fetch (and lazily construct) a named curve."""
    try:
        m, a, terms = _CURVE_SPECS[name]
    except KeyError:
        raise CryptoError(
            f"unknown curve {name!r}; choose from {sorted(_CURVE_SPECS)}"
        ) from None
    return koblitz_curve(m, a, terms, name)


def __getattr__(attr: str):
    """Lazy module attributes K163/K233/K571/KTEST (PEP 562)."""
    lazy = {"K163": "K-163", "K233": "K-233", "K571": "K-571", "KTEST": "K-TEST"}
    if attr in lazy:
        return curve_by_name(lazy[attr])
    raise AttributeError(f"module {__name__!r} has no attribute {attr!r}")
