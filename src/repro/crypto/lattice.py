"""All-integer LLL lattice basis reduction.

The endgame the paper cites for *partial* nonce leakage ([37] Howgrave-
Graham & Smart, [61] Nguyen & Shparlinski, [1] LadderLeak) reduces ECDSA
key recovery to the Hidden Number Problem, solved by lattice basis
reduction.  This module implements the Lenstra–Lenstra–Lovász algorithm
in de Weger's all-integer formulation (Cohen, *A Course in Computational
Algebraic Number Theory*, Algorithm 2.6.7): the Gram–Schmidt data is kept
as exact integers (sub-determinants ``d`` and scaled coefficients
``lam``), avoiding both floating-point precision loss and the
denominator blow-up of rational arithmetic.

Entries are Python ints of arbitrary size, so 233- or 571-bit group
orders are handled exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

from ..errors import CryptoError

Matrix = List[List[int]]


def _dot(u: Sequence[int], v: Sequence[int]) -> int:
    return sum(a * b for a, b in zip(u, v))


def _round_div(a: int, b: int) -> int:
    """round(a / b) for integers (b > 0), ties away from zero."""
    if a >= 0:
        return (2 * a + b) // (2 * b)
    return -((-2 * a + b) // (2 * b))


def lll_reduce(basis: Matrix, delta: Fraction = Fraction(3, 4)) -> Matrix:
    """LLL-reduce an integer lattice basis (rows are basis vectors).

    Args:
        basis: Row-major integer basis; rows must be linearly independent.
        delta: Lovász parameter in (1/4, 1); 3/4 is the classic choice.

    Returns:
        A new LLL-reduced basis (the input is not modified).
    """
    if not basis:
        return []
    n = len(basis)
    m = len(basis[0])
    if any(len(row) != m for row in basis):
        raise CryptoError("basis rows must share one dimension")
    if not Fraction(1, 4) < delta < 1:
        raise CryptoError("delta must be in (1/4, 1)")
    delta_num, delta_den = delta.numerator, delta.denominator
    b = [list(row) for row in basis]

    # Integer Gram-Schmidt data: d[i+1] is the Gram determinant of the
    # first i+1 vectors (d[0] = 1); lam[i][j] = mu[i][j] * d[j+1].
    d = [0] * (n + 1)
    d[0] = 1
    lam = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1):
            u = _dot(b[i], b[j])
            for k in range(j):
                u = (d[k + 1] * u - lam[i][k] * lam[j][k]) // d[k]
            if j < i:
                lam[i][j] = u
            else:
                d[i + 1] = u
        if d[i + 1] <= 0:
            raise CryptoError("basis rows are linearly dependent")

    def size_reduce(k: int, l: int) -> None:
        if 2 * abs(lam[k][l]) > d[l + 1]:
            q = _round_div(lam[k][l], d[l + 1])
            b[k] = [x - q * y for x, y in zip(b[k], b[l])]
            for i in range(l):
                lam[k][i] -= q * lam[l][i]
            lam[k][l] -= q * d[l + 1]

    def swap(k: int) -> None:
        b[k], b[k - 1] = b[k - 1], b[k]
        for j in range(k - 1):
            lam[k][j], lam[k - 1][j] = lam[k - 1][j], lam[k][j]
        lam_ = lam[k][k - 1]
        new_dk = (d[k - 1] * d[k + 1] + lam_ * lam_) // d[k]
        for i in range(k + 1, n):
            t = lam[i][k]
            lam[i][k] = (d[k + 1] * lam[i][k - 1] - lam_ * t) // d[k]
            lam[i][k - 1] = (new_dk * t + lam_ * lam[i][k]) // d[k + 1]
        d[k] = new_dk

    k = 1
    while k < n:
        size_reduce(k, k - 1)
        # Lovász condition with exact integers:
        #   d[k+1]*d[k-1] >= (delta) * d[k]^2 - lam^2  (scaled by delta_den)
        lhs = delta_den * (d[k + 1] * d[k - 1] + lam[k][k - 1] ** 2)
        rhs = delta_num * d[k] * d[k]
        if lhs < rhs:
            swap(k)
            k = max(k - 1, 1)
        else:
            for l in range(k - 2, -1, -1):
                size_reduce(k, l)
            k += 1
    return b


def shortest_vector(basis: Matrix) -> List[int]:
    """The shortest nonzero row of an LLL-reduced copy of ``basis``."""
    reduced = lll_reduce(basis)
    nonzero = [row for row in reduced if any(row)]
    if not nonzero:
        raise CryptoError("lattice has no nonzero vector")
    return min(nonzero, key=lambda row: _dot(row, row))
