"""ECDSA key recovery from partial nonces — the Hidden Number Problem.

The paper's attack recovers *most* bits of each nonce (median 81%), and
its references ([37] Howgrave-Graham & Smart, [61] Nguyen & Shparlinski,
[1] LadderLeak) show how partial nonce knowledge across several
signatures yields the private key: each signature with ``l`` known
most-significant nonce bits gives one Hidden Number Problem sample, and
enough samples make the key the (embedded) short vector of a lattice.

Derivation: with nonce k_i = a_i + b_i, where a_i collects the known top
bits (shifted into place) and 0 <= b_i < B = 2^(bits - l), the ECDSA
equation k_i = s_i^{-1}(e_i + r_i d) mod q gives

    b_i = u_i + t_i * d  (mod q),   t_i = s_i^{-1} r_i,
                                    u_i = s_i^{-1} e_i - a_i.

The classic Boneh–Venkatesan lattice (scaled to integers) embeds
(q*b_1', ..., q*b_N', d*B, q*B) with b_i' = b_i - B/2 as a short vector;
LLL finds it once N*l comfortably exceeds the key length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import CryptoError
from .curves import BinaryCurve
from .ec2m import scalar_mult
from .ecdsa import EcdsaSignature, hash_to_int
from .lattice import lll_reduce


@dataclass(frozen=True)
class HnpSample:
    """One signature's HNP sample: b = u + t*d (mod q), 0 <= b < bound."""

    t: int
    u: int
    bound: int


def sample_from_signature(
    curve: BinaryCurve,
    message: bytes,
    sig: EcdsaSignature,
    known_msbs: int,
    n_known: int,
    nonce_bits: Optional[int] = None,
) -> HnpSample:
    """Build the HNP sample for a signature with known top nonce bits.

    Args:
        known_msbs: Integer value of the leading ``n_known`` bits of the
            nonce (most significant first; includes the nonce's leading 1).
        n_known: How many leading bits are known (>= 1).
        nonce_bits: Total bit length of the nonce; defaults to the length
            implied by the known leading-1 position, i.e. the subgroup
            order's bit length.
    """
    if n_known < 1:
        raise CryptoError("need at least one known bit")
    q = curve.n
    bits = nonce_bits if nonce_bits is not None else q.bit_length()
    if n_known > bits:
        raise CryptoError("cannot know more bits than the nonce has")
    shift = bits - n_known
    a = known_msbs << shift
    bound = 1 << shift
    s_inv = pow(sig.s, -1, q)
    e = hash_to_int(message, curve)
    t = (s_inv * sig.r) % q
    u = (s_inv * e - a) % q
    return HnpSample(t=t, u=u, bound=bound)


def leading_bits_from_extraction(
    extracted_bits: Sequence[int], max_bits: int = 40
) -> Tuple[int, int]:
    """Known leading nonce bits from a ladder-bit extraction.

    The Montgomery ladder processes the nonce's bits below its implicit
    leading 1, most-significant first, so a cleanly recovered *prefix* of
    the extraction gives the nonce's top bits: value ``1 || prefix``.
    Returns (known_msbs, n_known).
    """
    prefix = list(extracted_bits[:max_bits])
    value = 1
    for bit in prefix:
        value = (value << 1) | bit
    return value, len(prefix) + 1


def _build_lattice(samples: Sequence[HnpSample], q: int) -> List[List[int]]:
    """The scaled-integer Boneh–Venkatesan basis (rows = basis vectors)."""
    n = len(samples)
    b = samples[0].bound
    dim = n + 2
    rows: List[List[int]] = []
    for i in range(n):
        row = [0] * dim
        row[i] = q * q
        rows.append(row)
    row_t = [(s.t * q) % (q * q) for s in samples] + [b, 0]
    rows.append(row_t)
    row_u = [((s.u - s.bound // 2) * q) % (q * q) for s in samples] + [0, b * q]
    rows.append(row_u)
    return rows


def recover_private_key_hnp(
    curve: BinaryCurve,
    samples: Sequence[HnpSample],
    public_point,
) -> Optional[int]:
    """Recover the ECDSA private key from HNP samples, verified publicly.

    Returns the private scalar d with d*G == public_point, or None if the
    lattice did not reveal it (too few samples / too few known bits).
    """
    if not samples:
        raise CryptoError("need at least one HNP sample")
    bounds = {s.bound for s in samples}
    if len(bounds) != 1:
        raise CryptoError("samples must share one bound (same n_known)")
    q = curve.n
    b = samples[0].bound
    basis = _build_lattice(samples, q)
    reduced = lll_reduce(basis)
    n = len(samples)
    for row in reduced:
        tail = row[n]
        if tail == 0 or tail % b:
            continue
        for candidate in ((tail // b) % q, (-tail // b) % q):
            if candidate and scalar_mult(curve, candidate, curve.generator) == tuple(
                public_point
            ):
                return candidate
    return None


def samples_needed(curve: BinaryCurve, n_known: int, margin: float = 1.4) -> int:
    """Rule-of-thumb sample count: key_bits / known_bits x safety margin."""
    if n_known < 1:
        raise CryptoError("need at least one known bit")
    import math

    return max(3, math.ceil(curve.n.bit_length() / n_known * margin))
