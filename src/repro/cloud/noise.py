"""Background-tenant noise with lazy per-set reconciliation.

Other tenants' accesses to a given LLC/SF set form (approximately) a Poisson
process; the paper measures its rate directly (Figure 2: 11.5 accesses per
millisecond per set on Cloud Run).  Simulating every tenant access would
make simulated time expensive regardless of attacker activity, so instead
each shared cache set records when noise was last reconciled; when real
traffic next touches the set at time ``t`` we draw
``Poisson(rate * (t - last))`` foreign insertions and apply them.

This preserves the property every result in Sections 4-6 hinges on: the
probability that a set survives undisturbed decays exponentially with the
*duration* of the operation touching it (TestEviction, prime, probe).
"""

from __future__ import annotations

import random

from .._util import poisson
from ..config import NoiseConfig
from ..rng import S_NOISE_LLC, S_NOISE_SF


class BackgroundNoise:
    """Poisson noise source attached to a hierarchy (see DESIGN.md).

    Split between SF insertions (foreign private lines) and LLC insertions
    (foreign shared lines) by ``NoiseConfig.sf_fraction``.
    """

    def __init__(self, cfg: NoiseConfig, clock_ghz: float, rng: random.Random):
        self.cfg = cfg
        rate = cfg.rate_per_cycle(clock_ghz)
        # The configured rate is the LLC-visible access rate (what Figure 2
        # measures by Prime+Probe on an LLC set); the SF set with the same
        # index sees sf_fraction of that rate in private-line allocations.
        self._llc_rate = rate
        self._sf_rate = rate * cfg.sf_fraction
        self._rng = rng
        #: Event-keyed RNG (counter mode); None selects the serial stream.
        #: In counter mode each reconciliation window draws keyed by
        #: ``(set, old_clock)`` — the clock strictly advances past ``old``
        #: whenever a draw happens, so a window is never drawn twice and
        #: needs no explicit counter.
        self.crng = None
        #: Total noise events injected (across all sets).
        self.events = 0

    @property
    def enabled(self) -> bool:
        return self._sf_rate > 0.0 or self._llc_rate > 0.0

    def _draw(self, rng: random.Random, lam: float) -> int:
        """Poisson draw with a cheap small-mean fast path.

        Reconciliation runs on *every* access, so the common case (tiny
        elapsed window, lam << 1) must cost one uniform draw.  P(N >= 2)
        is lam^2/2 — negligible below the threshold.
        """
        if lam < 0.01:
            return 1 if rng.random() < lam else 0
        return poisson(rng, lam)

    def reconcile(self, hier, sidx: int, now: int) -> None:
        """Apply pending noise to shared set ``sidx`` up to time ``now``.

        Insertion counts are capped at three times the set's associativity:
        beyond that the set is fully foreign and older events cannot change
        the outcome, so simulating them would be pure waste.

        The SF block runs before the LLC block and each block draws from the
        shared RNG in a fixed order; :meth:`reconcile_many` loops sets in
        caller order through this same routine, so batched and per-access
        reconciliation consume the RNG identically (bit-identical trials).

        This runs on *every* access, so the common case — a few elapsed
        cycles, no event — is inlined: one ``exchange_noise_clock`` call and
        one uniform draw per structure (the ``_draw`` small-mean fast path,
        kept in sync with that method).

        In counter mode (``crng`` bound) the draw for each window is a
        pure function of ``(structure, set, old_clock)`` instead of the
        next serial stream position — same shape, order-independent.
        """
        if self.crng is not None:
            self._reconcile_keyed(hier, sidx, now)
            return
        rng = self._rng
        if self._sf_rate > 0.0:
            sf = hier.sf
            dt = now - sf.exchange_noise_clock(sidx, now)
            if dt > 0:
                lam = self._sf_rate * dt
                if lam < 0.01:
                    n = 1 if rng.random() < lam else 0
                else:
                    n = poisson(rng, lam)
                if n:
                    cap = 3 * sf.ways
                    if n > cap:
                        n = cap
                    for _ in range(n):
                        hier.noise_insert_sf(sidx)
                    self.events += n
        if self._llc_rate > 0.0:
            llc = hier.llc
            dt = now - llc.exchange_noise_clock(sidx, now)
            if dt > 0:
                lam = self._llc_rate * dt
                if lam < 0.01:
                    n = 1 if rng.random() < lam else 0
                else:
                    n = poisson(rng, lam)
                if n:
                    cap = 3 * llc.ways
                    if n > cap:
                        n = cap
                    for _ in range(n):
                        hier.noise_insert_llc(sidx)
                    self.events += n

    def _reconcile_keyed(self, hier, sidx: int, now: int) -> None:
        """Counter-mode reconcile: draws keyed by ``(set, old_clock)``."""
        crng = self.crng
        if self._sf_rate > 0.0:
            sf = hier.sf
            old = sf.exchange_noise_clock(sidx, now)
            if now > old:
                n = crng.noise_poisson(
                    S_NOISE_SF, sidx, old, self._sf_rate * (now - old))
                if n:
                    cap = 3 * sf.ways
                    if n > cap:
                        n = cap
                    for _ in range(n):
                        hier.noise_insert_sf(sidx)
                    self.events += n
        if self._llc_rate > 0.0:
            llc = hier.llc
            old = llc.exchange_noise_clock(sidx, now)
            if now > old:
                n = crng.noise_poisson(
                    S_NOISE_LLC, sidx, old, self._llc_rate * (now - old))
                if n:
                    cap = 3 * llc.ways
                    if n > cap:
                        n = cap
                    for _ in range(n):
                        hier.noise_insert_llc(sidx)
                    self.events += n

    def reconcile_many(self, hier, sidxs, now: int) -> None:
        """Reconcile several shared sets up to ``now``, in caller order.

        Duplicate indices are harmless: the second visit sees ``dt == 0``
        and draws nothing, exactly as repeated per-access reconciliation
        at a fixed ``now`` would.
        """
        reconcile = self.reconcile
        for sidx in sidxs:
            reconcile(hier, sidx, now)

    def expected_events(self, cycles: int) -> float:
        """Expected number of noise events per set over ``cycles``."""
        return (self._sf_rate + self._llc_rate) * cycles
