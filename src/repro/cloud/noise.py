"""Background-tenant noise with lazy per-set reconciliation.

Other tenants' accesses to a given LLC/SF set form (approximately) a Poisson
process; the paper measures its rate directly (Figure 2: 11.5 accesses per
millisecond per set on Cloud Run).  Simulating every tenant access would
make simulated time expensive regardless of attacker activity, so instead
each shared cache set records when noise was last reconciled; when real
traffic next touches the set at time ``t`` we draw
``Poisson(rate * (t - last))`` foreign insertions and apply them.

This preserves the property every result in Sections 4-6 hinges on: the
probability that a set survives undisturbed decays exponentially with the
*duration* of the operation touching it (TestEviction, prime, probe).
"""

from __future__ import annotations

import random

from .._util import poisson
from ..config import NoiseConfig


class BackgroundNoise:
    """Poisson noise source attached to a hierarchy (see DESIGN.md).

    Split between SF insertions (foreign private lines) and LLC insertions
    (foreign shared lines) by ``NoiseConfig.sf_fraction``.
    """

    def __init__(self, cfg: NoiseConfig, clock_ghz: float, rng: random.Random):
        self.cfg = cfg
        rate = cfg.rate_per_cycle(clock_ghz)
        # The configured rate is the LLC-visible access rate (what Figure 2
        # measures by Prime+Probe on an LLC set); the SF set with the same
        # index sees sf_fraction of that rate in private-line allocations.
        self._llc_rate = rate
        self._sf_rate = rate * cfg.sf_fraction
        self._rng = rng
        #: Total noise events injected (across all sets).
        self.events = 0

    @property
    def enabled(self) -> bool:
        return self._sf_rate > 0.0 or self._llc_rate > 0.0

    def _draw(self, rng: random.Random, lam: float) -> int:
        """Poisson draw with a cheap small-mean fast path.

        Reconciliation runs on *every* access, so the common case (tiny
        elapsed window, lam << 1) must cost one uniform draw.  P(N >= 2)
        is lam^2/2 — negligible below the threshold.
        """
        if lam < 0.01:
            return 1 if rng.random() < lam else 0
        return poisson(rng, lam)

    def reconcile(self, hier, sidx: int, now: int) -> None:
        """Apply pending noise to shared set ``sidx`` up to time ``now``.

        Insertion counts are capped at three times the set's associativity:
        beyond that the set is fully foreign and older events cannot change
        the outcome, so simulating them would be pure waste.
        """
        rng = self._rng
        if self._sf_rate > 0.0:
            cset = hier.sf.get_set(sidx)
            dt = now - cset.noise_t
            if dt > 0:
                cset.noise_t = now
                n = self._draw(rng, self._sf_rate * dt)
                cap = 3 * hier.sf.ways
                if n > cap:
                    n = cap
                for _ in range(n):
                    hier.noise_insert_sf(sidx)
                self.events += n
        if self._llc_rate > 0.0:
            cset = hier.llc.get_set(sidx)
            dt = now - cset.noise_t
            if dt > 0:
                cset.noise_t = now
                n = self._draw(rng, self._llc_rate * dt)
                cap = 3 * hier.llc.ways
                if n > cap:
                    n = cap
                for _ in range(n):
                    hier.noise_insert_llc(sidx)
                self.events += n

    def expected_events(self, cycles: int) -> float:
        """Expected number of noise events per set over ``cycles``."""
        return (self._sf_rate + self._llc_rate) * cycles
