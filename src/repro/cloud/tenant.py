"""Synthetic tenant workload profiles.

The paper measures an *aggregate* background access rate; this module lets
examples and ablations compose that aggregate from plausible tenant types
(the computation-dense multi-tenancy of Section 1.1).  Each profile states
how often one instance of that tenant touches a random LLC set; a host's
mix then reduces to a :class:`repro.config.NoiseConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..config import NoiseConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class TenantProfile:
    """One background tenant type co-resident on the host.

    Attributes:
        name: Label, e.g. ``"web-service"``.
        accesses_per_ms_per_set: Contribution of one instance to the per-set
            LLC access rate.
        sf_fraction: Fraction of its insertions that allocate SF entries
            (private working set) rather than LLC lines (shared/streaming).
    """

    name: str
    accesses_per_ms_per_set: float
    sf_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.accesses_per_ms_per_set < 0:
            raise ConfigurationError(f"{self.name}: rate must be non-negative")
        if not 0.0 <= self.sf_fraction <= 1.0:
            raise ConfigurationError(f"{self.name}: sf_fraction must be in [0, 1]")


#: A mix that reproduces the paper's measured Cloud Run aggregate
#: (11.5 accesses/ms/set) from plausible co-tenants: (profile, instances).
STANDARD_TENANT_MIX: Tuple[Tuple[TenantProfile, int], ...] = (
    (TenantProfile("web-service", 0.9, sf_fraction=0.7), 6),
    (TenantProfile("batch-analytics", 1.6, sf_fraction=0.4), 3),
    (TenantProfile("cache-heavy-db", 1.3, sf_fraction=0.6), 1),
)


def aggregate_noise(
    mix: Sequence[Tuple[TenantProfile, int]], name: str = "tenant-mix"
) -> NoiseConfig:
    """Reduce a tenant mix to the equivalent Poisson NoiseConfig.

    Rates add; the SF fraction is the rate-weighted mean of the tenants'.
    """
    total = 0.0
    sf_weighted = 0.0
    for profile, count in mix:
        if count < 0:
            raise ConfigurationError("tenant instance count must be non-negative")
        rate = profile.accesses_per_ms_per_set * count
        total += rate
        sf_weighted += rate * profile.sf_fraction
    sf_fraction = sf_weighted / total if total > 0 else 0.6
    return NoiseConfig(
        name=name,
        llc_accesses_per_ms_per_set=total,
        sf_fraction=sf_fraction,
    )
