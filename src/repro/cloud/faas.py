"""A minimal Function-as-a-Service platform model.

Models the scheduling-level constraints the paper's attack must live with
(Sections 2.4 and 4.2): containers are placed on multi-tenant hosts, get a
bounded number of physical cores, are billed by CPU time, and every request
has a hard timeout (Cloud Run: at most one hour) after which the instance
may be torn down and attack progress lost.

The co-location step itself (Step 0) is prior work [111]; here
:meth:`FaaSPlatform.launch` simply places instances on random hosts and the
caller checks :meth:`FaaSPlatform.co_located` — mirroring the paper's
assumption that co-location is achieved before Steps 1-3 begin.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .._util import make_rng
from ..config import MachineConfig, NoiseConfig
from ..errors import ConfigurationError

#: Cloud Run's maximum configurable request timeout (seconds).
CLOUD_RUN_MAX_TIMEOUT_S = 3600.0

#: Typical FaaS platform timeout (AWS Lambda / Azure Functions, seconds).
TYPICAL_FAAS_TIMEOUT_S = 900.0


class ContainerInstance:
    """One container instance pinned to physical cores of a host."""

    def __init__(
        self,
        name: str,
        host: "Host",
        cores: List[int],
        max_request_seconds: float,
        lifetime_seconds: float,
    ) -> None:
        self.name = name
        self.host = host
        self.cores = cores
        self.max_request_seconds = max_request_seconds
        self.lifetime_seconds = lifetime_seconds
        self.created_at_cycles = host.machine.now
        self._request_started_at: Optional[int] = None
        self.cpu_cycles_billed = 0

    # -- Request lifecycle -------------------------------------------------

    def begin_request(self) -> None:
        """Start serving a request (starts the timeout clock)."""
        self._request_started_at = self.host.machine.now

    def request_elapsed_seconds(self) -> float:
        if self._request_started_at is None:
            return 0.0
        return self.host.machine.seconds(
            self.host.machine.now - self._request_started_at
        )

    def request_timed_out(self) -> bool:
        """Whether the current request exceeded the platform timeout."""
        return self.request_elapsed_seconds() > self.max_request_seconds

    def remaining_request_cycles(self) -> int:
        """Cycles left before the current request hits its timeout."""
        if self._request_started_at is None:
            return self.host.machine.seconds_remaining_to_cycles(
                self.max_request_seconds
            )
        used = self.host.machine.now - self._request_started_at
        budget = int(self.max_request_seconds * self.host.machine.clock_hz)
        return max(0, budget - used)

    def end_request(self) -> float:
        """Finish the request; returns billed CPU seconds."""
        if self._request_started_at is None:
            return 0.0
        used = self.host.machine.now - self._request_started_at
        self.cpu_cycles_billed += used * len(self.cores)
        self._request_started_at = None
        return used * len(self.cores) / self.host.machine.clock_hz

    # -- Instance lifecycle -----------------------------------------------

    def age_seconds(self) -> float:
        return self.host.machine.seconds(
            self.host.machine.now - self.created_at_cycles
        )

    def terminated(self) -> bool:
        """Whether the orchestrator has recycled this (short-lived) instance."""
        return self.age_seconds() > self.lifetime_seconds

    def billed_cpu_seconds(self) -> float:
        return self.cpu_cycles_billed / self.host.machine.clock_hz


class Host:
    """A physical host: one simulated machine shared by tenant containers."""

    def __init__(
        self,
        name: str,
        machine_cfg: MachineConfig,
        noise_cfg: NoiseConfig,
        seed: int,
    ) -> None:
        # Imported here to avoid a circular import: the machine pulls in the
        # noise model from this subpackage at module load time.
        from ..memsys.machine import Machine

        self.name = name
        self.machine = Machine(machine_cfg, noise=noise_cfg, seed=seed)
        # Patch a small convenience used by ContainerInstance.
        self.machine.seconds_remaining_to_cycles = lambda s: int(
            s * self.machine.clock_hz
        )
        self._free_cores = list(range(machine_cfg.cores))
        self.containers: List[ContainerInstance] = []

    def deploy(
        self,
        name: str,
        cores: int = 2,
        max_request_seconds: float = CLOUD_RUN_MAX_TIMEOUT_S,
        lifetime_seconds: float = 1800.0,
    ) -> ContainerInstance:
        """Place a container on this host, pinning ``cores`` physical cores.

        The paper's attacker requests 2 physical cores per instance (the
        main thread plus the helper thread; Section 4.2).
        """
        if cores > len(self._free_cores):
            raise ConfigurationError(
                f"host {self.name} has only {len(self._free_cores)} free cores"
            )
        pinned = [self._free_cores.pop(0) for _ in range(cores)]
        instance = ContainerInstance(
            name, self, pinned, max_request_seconds, lifetime_seconds
        )
        self.containers.append(instance)
        return instance

    def release(self, instance: ContainerInstance) -> None:
        """Tear an instance down and free its cores."""
        if instance in self.containers:
            self.containers.remove(instance)
            self._free_cores.extend(instance.cores)

    def free_cores(self) -> int:
        return len(self._free_cores)


class FaaSPlatform:
    """A pool of hosts with random placement (co-location by luck or [111])."""

    def __init__(
        self,
        machine_cfg: MachineConfig,
        noise_cfg: NoiseConfig,
        n_hosts: int = 4,
        seed: int = 0,
    ) -> None:
        if n_hosts < 1:
            raise ConfigurationError("need at least one host")
        self._rng = make_rng(("faas", seed))
        self.hosts = [
            Host(f"host-{i}", machine_cfg, noise_cfg, seed=seed * 1000 + i)
            for i in range(n_hosts)
        ]
        self._services: Dict[str, List[ContainerInstance]] = {}

    def launch(
        self,
        service: str,
        instances: int = 1,
        cores: int = 2,
        max_request_seconds: float = CLOUD_RUN_MAX_TIMEOUT_S,
    ) -> List[ContainerInstance]:
        """Launch instances of ``service`` on random hosts with capacity."""
        placed: List[ContainerInstance] = []
        for i in range(instances):
            candidates = [h for h in self.hosts if h.free_cores() >= cores]
            if not candidates:
                break
            host = self._rng.choice(candidates)
            placed.append(
                host.deploy(f"{service}-{i}", cores, max_request_seconds)
            )
        self._services.setdefault(service, []).extend(placed)
        return placed

    def instances(self, service: str) -> List[ContainerInstance]:
        return list(self._services.get(service, []))

    def co_located(
        self, service_a: str, service_b: str
    ) -> List[Tuple[ContainerInstance, ContainerInstance]]:
        """Pairs of instances of the two services sharing a host."""
        pairs = []
        for a in self._services.get(service_a, []):
            for b in self._services.get(service_b, []):
                if a.host is b.host:
                    pairs.append((a, b))
        return pairs
