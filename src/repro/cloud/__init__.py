"""Cloud-environment substrate: tenant noise and a FaaS platform model.

The paper's central obstacle is that the public cloud floods LLC/SF sets
with other tenants' accesses (11.5 accesses/ms/set on Cloud Run vs. 0.29 on
a quiescent local machine) while FaaS schedulers bound how long an attacker
instance can run.  This subpackage models both:

* :mod:`repro.cloud.noise` — Poisson background accesses with lazy per-set
  reconciliation, driven by a :class:`repro.config.NoiseConfig`.
* :mod:`repro.cloud.tenant` — synthetic tenant workload profiles whose
  aggregate access rate yields a NoiseConfig.
* :mod:`repro.cloud.faas` — hosts, container instances, request timeouts,
  and CPU-time billing (the constraints of Section 4.2's "Implications").
"""

from .noise import BackgroundNoise
from .tenant import TenantProfile, aggregate_noise, STANDARD_TENANT_MIX
from .faas import ContainerInstance, FaaSPlatform, Host

__all__ = [
    "BackgroundNoise",
    "ContainerInstance",
    "FaaSPlatform",
    "Host",
    "STANDARD_TENANT_MIX",
    "TenantProfile",
    "aggregate_noise",
]
