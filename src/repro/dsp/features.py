"""Trace binning and PSD feature extraction for the target-set classifier.

The scanner turns each monitored set's access-timestamp trace into a fixed
sampling-rate counting signal, estimates its Welch PSD, and compresses the
spectrum into a fixed-length feature vector (log power in geometric
frequency bands plus summary statistics) that the SVM consumes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ReproError
from .welch import welch_psd


def bin_trace(
    timestamps: Sequence[int],
    start: int,
    end: int,
    bin_cycles: int,
) -> np.ndarray:
    """Convert event timestamps (cycles) to a per-bin count signal."""
    if end <= start:
        raise ReproError("trace window must have positive length")
    if bin_cycles < 1:
        raise ReproError("bin_cycles must be >= 1")
    n_bins = max(2, (end - start) // bin_cycles)
    signal = np.zeros(n_bins)
    for t in timestamps:
        idx = (t - start) // bin_cycles
        if 0 <= idx < n_bins:
            signal[idx] += 1.0
    return signal


def psd_feature_vector(
    timestamps: Sequence[int],
    start: int,
    end: int,
    bin_cycles: int,
    clock_hz: float,
    n_bands: int = 24,
    nperseg: int = 256,
) -> np.ndarray:
    """Fixed-length PSD feature vector for one access trace.

    Features: log mean power in ``n_bands`` geometric frequency bands,
    followed by [log total power, log peak/floor ratio, normalized peak
    frequency, log access count].  Length is ``n_bands + 4``.
    """
    signal = bin_trace(timestamps, start, end, bin_cycles)
    fs = clock_hz / bin_cycles
    freqs, psd = welch_psd(signal, fs=fs, nperseg=min(nperseg, len(signal)))
    # Drop DC; use geometric bands over the remaining spectrum.
    freqs = freqs[1:]
    psd = psd[1:]
    if len(psd) < n_bands:
        # Very short traces: pad by repeating the last value.
        psd = np.concatenate([psd, np.full(n_bands - len(psd), psd[-1] if len(psd) else 1e-30)])
        freqs = np.linspace(fs / len(signal), fs / 2, len(psd))
    edges = np.geomspace(freqs[0], freqs[-1], n_bands + 1)
    bands = np.empty(n_bands)
    for i in range(n_bands):
        mask = (freqs >= edges[i]) & (freqs <= edges[i + 1])
        bands[i] = psd[mask].mean() if mask.any() else 0.0
    eps = 1e-30
    log_bands = np.log10(bands + eps)
    total = np.log10(psd.sum() + eps)
    floor = float(np.median(psd)) + eps
    peak_idx = int(np.argmax(psd))
    peak_ratio = np.log10(psd[peak_idx] / floor + eps)
    peak_freq = freqs[peak_idx] / (fs / 2)
    count = np.log10(len(timestamps) + 1)
    return np.concatenate([log_bands, [total, peak_ratio, peak_freq, count]])
