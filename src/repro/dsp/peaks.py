"""Peak detection in PSD estimates."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ReproError


def find_peaks(
    values: np.ndarray, min_prominence_ratio: float = 3.0
) -> List[int]:
    """Indices of local maxima at least ``min_prominence_ratio`` x the median.

    A deliberately simple detector: the victim's peak in the PSD is an
    order of magnitude above the broadband noise floor (Figure 7), so a
    median-relative threshold on local maxima suffices.
    """
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or len(v) < 3:
        raise ReproError("find_peaks needs a 1-D array of length >= 3")
    floor = float(np.median(v))
    if floor <= 0.0:
        floor = float(np.mean(v)) or 1e-30
    threshold = floor * min_prominence_ratio
    peaks = []
    for i in range(1, len(v) - 1):
        if v[i] >= v[i - 1] and v[i] > v[i + 1] and v[i] > threshold:
            peaks.append(i)
    return peaks


def peak_strength_at(
    freqs: np.ndarray,
    psd: np.ndarray,
    target_freq: float,
    rel_tolerance: float = 0.15,
) -> Tuple[float, float]:
    """(peak power near target_freq / median floor, actual peak frequency).

    Measures how strongly the trace expresses the victim's expected access
    frequency.  A ratio near 1 means "no peak"; the target set typically
    scores orders of magnitude higher.
    """
    freqs = np.asarray(freqs, dtype=float)
    psd = np.asarray(psd, dtype=float)
    if target_freq <= 0:
        raise ReproError("target frequency must be positive")
    lo = target_freq * (1.0 - rel_tolerance)
    hi = target_freq * (1.0 + rel_tolerance)
    band = (freqs >= lo) & (freqs <= hi)
    if not band.any():
        return 0.0, 0.0
    floor = float(np.median(psd[1:])) or 1e-30
    idx = np.argmax(np.where(band, psd, -np.inf))
    return float(psd[idx] / floor), float(freqs[idx])
