"""Power spectral density estimation (periodogram and Welch's method).

Welch's method [Welch 1967]: split the signal into overlapping segments,
taper each with a window, average the modified periodograms.  The variance
reduction from averaging is what makes the victim's periodic accesses stand
out against broadband tenant noise (Figure 7 of the paper).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..errors import ReproError
from .window import hann_window


def periodogram(
    signal: np.ndarray, fs: float = 1.0, detrend: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot periodogram; returns (frequencies, psd).

    One-sided, density-scaled: the PSD integrates (approximately) to the
    signal variance.
    """
    x = np.asarray(signal, dtype=float)
    if x.ndim != 1 or len(x) < 2:
        raise ReproError("periodogram needs a 1-D signal of length >= 2")
    if detrend:
        x = x - x.mean()
    n = len(x)
    spectrum = np.fft.rfft(x)
    psd = (np.abs(spectrum) ** 2) / (fs * n)
    # One-sided scaling: double everything except DC (and Nyquist if even n).
    if n % 2 == 0:
        psd[1:-1] *= 2.0
    else:
        psd[1:] *= 2.0
    freqs = np.fft.rfftfreq(n, d=1.0 / fs)
    return freqs, psd


def welch_psd(
    signal: np.ndarray,
    fs: float = 1.0,
    nperseg: int = 256,
    overlap: float = 0.5,
    window_fn: Optional[Callable[[int], np.ndarray]] = None,
    detrend: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch PSD estimate; returns (frequencies, psd).

    Args:
        signal: 1-D sample sequence (e.g. a binned access trace).
        fs: Sampling frequency in Hz.
        nperseg: Segment length (clamped to the signal length).
        overlap: Fractional overlap between segments in [0, 1).
        window_fn: Window generator; defaults to Hann.
        detrend: Remove each segment's mean (suppresses the DC spike from
            the mean access rate, which carries no periodicity information).
    """
    x = np.asarray(signal, dtype=float)
    if x.ndim != 1 or len(x) < 2:
        raise ReproError("welch_psd needs a 1-D signal of length >= 2")
    if not 0.0 <= overlap < 1.0:
        raise ReproError("overlap must be in [0, 1)")
    nperseg = int(min(nperseg, len(x)))
    if nperseg < 2:
        raise ReproError("nperseg must be >= 2")
    window = (window_fn or hann_window)(nperseg)
    step = max(1, int(round(nperseg * (1.0 - overlap))))
    win_power = float(np.sum(window**2))
    psd_acc = None
    count = 0
    for start in range(0, len(x) - nperseg + 1, step):
        seg = x[start : start + nperseg]
        if detrend:
            seg = seg - seg.mean()
        seg = seg * window
        spectrum = np.fft.rfft(seg)
        p = (np.abs(spectrum) ** 2) / (fs * win_power)
        psd_acc = p if psd_acc is None else psd_acc + p
        count += 1
    if psd_acc is None:  # signal shorter than one segment (can't happen after clamp)
        raise ReproError("signal shorter than one segment")
    psd = psd_acc / count
    if nperseg % 2 == 0:
        psd[1:-1] *= 2.0
    else:
        psd[1:] *= 2.0
    freqs = np.fft.rfftfreq(nperseg, d=1.0 / fs)
    return freqs, psd
