"""Signal-processing substrate: Welch PSD, windows, peaks, features.

Section 6.2 of the paper identifies the victim's target cache set by
estimating the power spectral density of each candidate set's access trace
with Welch's method and looking for peaks at the victim's expected access
frequency.  This subpackage implements that pipeline from scratch (only
``numpy.fft`` is used underneath); tests cross-check against
``scipy.signal.welch``.
"""

from .features import bin_trace, psd_feature_vector
from .peaks import find_peaks, peak_strength_at
from .welch import periodogram, welch_psd
from .window import hann_window, rectangular_window

__all__ = [
    "bin_trace",
    "find_peaks",
    "hann_window",
    "peak_strength_at",
    "periodogram",
    "psd_feature_vector",
    "rectangular_window",
    "welch_psd",
]
