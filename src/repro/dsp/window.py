"""Window functions for spectral estimation."""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def hann_window(n: int) -> np.ndarray:
    """The periodic ("DFT-even") Hann window, the standard Welch taper."""
    if n < 1:
        raise ReproError("window length must be >= 1")
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * k / n)


def rectangular_window(n: int) -> np.ndarray:
    """The boxcar window (plain segmented periodogram)."""
    if n < 1:
        raise ReproError("window length must be >= 1")
    return np.ones(n)
