"""Command-line interface: quick experiments without writing a script.

Usage (also via ``python -m repro``):

    python -m repro machines                 # list machine presets
    python -m repro noise                    # list noise presets
    python -m repro evset --algo bins --env cloud --trials 8 --jobs 4
    python -m repro monitor --duration-us 500 --env cloud
    python -m repro attack --traces 3
    python -m repro campaign --name construction --campaign-env cloud \\
        --algo bins --trials 16 --jobs 4 --journal-dir .repro/journals

Each subcommand builds a fresh simulated environment, runs the stage, and
prints a short report.  Seeds default to 0 and make runs reproducible;
``--jobs N`` fans seeded trials out over N worker processes through
:mod:`repro.exec` without changing any result.  ``campaign`` runs a named
trial campaign with journaling: rerunning the same campaign resumes from
its journal instead of recomputing finished trials.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import Table, format_progress, format_seconds
from .config import (
    MACHINE_PRESETS,
    NOISE_PRESETS,
    exposure_matched,
)
from .core.context import AttackerContext
from .core.evset import EvsetConfig, bulk_construct_page_offset
from .core.evset.driver import algorithm_names
from .core.monitor import ParallelProbing, monitor_set
from .core.pipeline import AttackConfig, run_end_to_end
from .core.scanner import ScannerConfig, TargetSetClassifier, collect_labeled_traces
from .envs import EnvSpec, environment_names
from .errors import ReproError
from .rng import RNG_MODES, resolve_rng_mode
from .exec import (
    CampaignJournal,
    ConstructionSample,
    ExecPolicy,
    ProgressReporter,
    construction_campaign,
    default_jobs,
    run_campaign,
    summarize_construction_samples,
)
from .exec.campaigns import CLI_CAMPAIGNS
from .exec.journal import DEFAULT_JOURNAL_DIR
from .fleet.store import DEFAULT_FLEET_DIR
from .memsys.machine import Machine
from .victim import EcdsaVictim, VictimConfig


def _build_env(args):
    cfg = MACHINE_PRESETS[args.machine]()
    mode = resolve_rng_mode(getattr(args, "rng", None))
    if cfg.rng_mode != mode:
        cfg = dataclasses.replace(cfg, rng_mode=mode)
    noise = NOISE_PRESETS[args.env]
    if args.exposure_matched:
        noise = exposure_matched(noise, cfg)
    machine = Machine(cfg, noise=noise, seed=args.seed)
    ctx = AttackerContext(machine, seed=args.seed + 1)
    ctx.calibrate()
    return machine, ctx


def cmd_machines(args) -> int:
    table = Table("Machine presets", ["Name", "Description"])
    for name, factory in MACHINE_PRESETS.items():
        table.add_row(name, factory().describe())
    table.print()
    return 0


def cmd_noise(args) -> int:
    table = Table(
        "Noise presets", ["Name", "LLC accesses/ms/set", "SF fraction"]
    )
    for name, preset in NOISE_PRESETS.items():
        table.add_row(
            name, f"{preset.llc_accesses_per_ms_per_set:g}",
            f"{preset.sf_fraction:g}",
        )
    table.print()
    return 0


def _resolve_jobs(args) -> int:
    return default_jobs() if args.jobs == 0 else args.jobs


def cmd_evset(args) -> int:
    table = Table(
        f"SF eviction-set construction ({args.algo}, {args.env})",
        ["Trial", "Success", "Valid", "Sim time", "TestEvictions"],
    )
    campaign = construction_campaign(
        env=EnvSpec(
            machine=args.machine,
            noise=args.env,
            exposure_matched=args.exposure_matched,
            rng_mode=args.rng,
        ),
        algorithm=args.algo,
        trials=args.trials,
        evset_cfg=EvsetConfig(budget_ms=args.budget_ms),
        base_seed=args.seed,
        page_offset=args.page_offset,
    )
    result = run_campaign(
        campaign, ExecPolicy(jobs=_resolve_jobs(args))
    ).raise_on_failure()
    successes = 0
    for trial, sample in enumerate(result.values()):
        valid = "-"
        if sample.success:
            successes += sample.valid
            valid = "yes" if sample.valid else "NO"
        table.add_row(
            trial, "yes" if sample.success else "no", valid,
            format_seconds(sample.elapsed_ms / 1e3),
            sample.tests,
        )
    table.print()
    print(f"valid: {successes}/{args.trials}")
    return 0 if successes else 1


def cmd_monitor(args) -> int:
    machine, ctx = _build_env(args)
    bulk = bulk_construct_page_offset(
        ctx, "bins", args.page_offset, EvsetConfig(budget_ms=100)
    )
    evset = bulk.evsets[0]
    duration = int(args.duration_us * machine.cfg.clock_ghz * 1e3)
    trace = monitor_set(ParallelProbing(ctx, evset), duration)
    print(
        f"monitored one SF set for {args.duration_us:g} us: "
        f"{trace.access_count()} background accesses detected "
        f"({trace.access_count() / (duration / (machine.cfg.clock_ghz * 1e6)):.1f}"
        " per ms)"
    )
    return 0


def cmd_attack(args) -> int:
    machine, ctx = _build_env(args)
    victim = EcdsaVictim(machine, core=2, cfg=VictimConfig(), seed=args.seed + 7)
    scfg = ScannerConfig()
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    victim.run_continuously(machine.now + 1000)
    traces, labels = collect_labeled_traces(ctx, bulk.evsets, target_set, scfg, 2)
    classifier = TargetSetClassifier(machine.clock_hz, scfg).fit(traces, labels)
    report = run_end_to_end(
        ctx, victim, classifier,
        AttackConfig(n_traces=args.traces, scan_timeout_s=1.0),
        evsets=bulk.evsets,
    )
    ghz = machine.cfg.clock_ghz
    print(f"target identified: {report.target_identified}")
    for i, s in enumerate(report.scores):
        print(f"  signing {i}: {s.n_recovered}/{s.n_true_bits} bits "
              f"({s.recovered_fraction:.0%}), BER {s.bit_error_rate:.1%}")
    print(f"median recovered: {report.median_recovered_fraction:.0%}; "
          f"attack time {format_seconds(report.total_seconds(ghz))} (sim)")
    return 0 if report.target_identified else 1


def cmd_campaign(args) -> int:
    if getattr(args, "positional_name", None):
        args.name = args.positional_name
    if getattr(args, "rng", None):
        # Campaign trial specs carry string env names resolved per trial
        # (possibly in worker processes), so the mode travels via the
        # environment variable the resolver already honors.
        os.environ["REPRO_RNG"] = resolve_rng_mode(args.rng)
    campaign = CLI_CAMPAIGNS[args.name](args)
    journal = None
    if not args.no_journal:
        journal = CampaignJournal(args.journal_dir, campaign)
    policy = ExecPolicy(
        jobs=_resolve_jobs(args),
        timeout_s=args.timeout_s,
        max_retries=args.retries,
        batch=args.batch,
    )
    reporter = ProgressReporter(enabled=args.progress)
    result = run_campaign(campaign, policy, journal=journal, reporter=reporter)

    print(f"campaign: {campaign.name}")
    print(f"fingerprint: {result.fingerprint}")
    if journal is not None:
        print(f"journal: {journal.path}")
    print(format_progress(result.metrics, label=campaign.name))
    values = result.values()
    from .defenses.matrix import DefenseTrialSample, summarize_defense_samples

    if values and isinstance(values[0], DefenseTrialSample):
        table = Table(
            "Defense matrix",
            ["Defense", "Trials", "Constr", "Covered", "Monitor",
             "Identified", "Recovered", "BER", "Errors"],
        )
        for row in summarize_defense_samples(values):
            table.add_row(
                row["defense"],
                row["trials"],
                f"{row['construct_rate'] * 100:.0f}%",
                f"{row['target_covered'] * 100:.0f}%",
                f"{row['monitor_accuracy'] * 100:.0f}%",
                f"{row['identified'] * 100:.0f}%",
                f"{row['recovered'] * 100:.0f}%",
                f"{row['ber'] * 100:.1f}%",
                row["errors"],
            )
        table.print()
    elif values and isinstance(values[0], ConstructionSample):
        summary = summarize_construction_samples(values)
        table = Table(
            "Construction campaign summary",
            ["Trials", "Success", "Avg ms", "Std ms", "Med ms"],
        )
        table.add_row(
            len(values),
            f"{summary['succ'] * 100:.0f}%",
            f"{summary['avg_ms']:.2f}",
            f"{summary['std_ms']:.2f}",
            f"{summary['med_ms']:.2f}",
        )
        table.print()
    elif values and isinstance(values[0], dict):
        keys = sorted(values[0])
        table = Table("Campaign results", ["Trial"] + keys)
        for i, value in enumerate(values):
            table.add_row(i, *(f"{value.get(k)}" for k in keys))
        table.print()
    for failure in result.failures():
        print(
            f"trial {failure.index} (seed {failure.seed}) "
            f"{failure.status}: {failure.error}"
        )
    return 0 if result.ok else 1


def cmd_fleet(args) -> int:
    """Fleet service verbs (sharded, resumable campaign runs)."""
    from .fleet.service import FLEET_VERBS  # lazy: keep base CLI light

    return FLEET_VERBS[args.verb](args)


def cmd_fuzz(args) -> int:
    """Differential fuzz across the four execution tiers (repro.check)."""
    from .check import (
        DEFAULT_ARTIFACT_DIR,
        FuzzConfig,
        fuzz_campaign,
        generate_trace,
        replay_artifact,
        run_selftest,
        run_tiers,
        shrink_trace,
        write_artifact,
    )

    artifact_dir = (
        Path(args.artifact_dir) if args.artifact_dir else DEFAULT_ARTIFACT_DIR
    )
    if args.replay:
        try:
            result = replay_artifact(args.replay, rng_mode=args.rng)
        except (OSError, ReproError) as exc:
            print(f"cannot replay {args.replay}: {exc}")
            return 2
        print(f"replayed {args.replay}: {'ok' if result['ok'] else 'FAILING'}")
        if result["divergent"]:
            print(f"  divergent tiers: {', '.join(result['divergent'])}")
            for tier, delta in result["diffs"].items():
                print(f"  {tier}: {', '.join(delta)}")
        for tier, message in result["violations"].items():
            print(f"  {tier}: invariant violation: {message}")
        return 0 if result["ok"] else 1

    cfg = FuzzConfig(
        machine=args.machine,
        noise=args.noise,
        partition=args.partition,
        n_ops=args.ops,
        rng_mode=resolve_rng_mode(args.rng),
        defense=args.defense,
    )
    if args.batch is not None:
        from .check import batch_vs_serial

        summary = batch_vs_serial(
            cfg, range(args.seed, args.seed + args.seeds), args.batch
        )
        state = "" if summary["batch_supported"] else " (serial fallback)"
        print(
            f"batch differ: {summary['seeds']} traces on {args.machine}, "
            f"batch={summary['batch']} vs serial {summary['tier']}{state} "
            f"({summary['checks']} invariant checks): "
            f"{len(summary['divergent'])} divergences, "
            f"{len(summary['errors'])} errors"
        )
        for seed in summary["divergent"]:
            print(f"  seed {seed}: {', '.join(summary['diffs'][seed])}")
        for seed, message in summary["errors"].items():
            print(f"  seed {seed}: {message}")
        return 0 if summary["ok"] else 1
    if args.self_test:
        summary = run_selftest(
            dataclasses.replace(cfg, noise="none", partition="never"),
            artifact_dir=artifact_dir,
        )
        if not summary["caught"]:
            print(
                f"SELF-TEST FAILED: injected replacement-policy mutation "
                f"not detected in {summary['seeds_tried']} seeds"
            )
            return 1
        print(
            f"self-test: injected LRU->MRU mutation caught at seed "
            f"{summary['seed']} (tiers {', '.join(summary['divergent'])}); "
            f"trace shrunk {summary['ops_before']} -> "
            f"{summary['ops_after']} ops; clean after unpatch: "
            f"{summary['clean_after_unpatch']}"
        )
        print(f"artifact: {summary['artifact']}")
        return 0 if summary["shrunk_still_fails"] and summary[
            "clean_after_unpatch"
        ] else 1

    campaign = fuzz_campaign(cfg, args.seeds, base_seed=args.seed)
    policy = ExecPolicy(jobs=_resolve_jobs(args), timeout_s=args.timeout_s)
    reporter = ProgressReporter(enabled=args.progress)
    result = run_campaign(campaign, policy, reporter=reporter)
    print(format_progress(result.metrics, label=campaign.name))
    failing = [r for r in result.values() if not r["ok"]]
    crashed = result.failures()
    divergences = sum(1 for r in failing if r["divergent"])
    violations = sum(1 for r in failing if r["violations"])
    checks = sum(r["checks"] for r in result.values())
    print(
        f"fuzz: {len(result.records)} traces on {args.machine} "
        f"({checks} invariant checks): "
        f"{divergences} tier divergences, {violations} invariant violations"
    )
    for record in crashed:
        print(f"trial {record.index} (seed {record.seed}) "
              f"{record.status}: {record.error}")
    for failure in failing:
        seed = failure["seed"]
        print(f"seed {seed}: divergent={failure['divergent']} "
              f"violations={sorted(failure['violations'])}")
        trace = generate_trace(cfg, seed)
        shrunk = shrink_trace(trace, lambda t: not run_tiers(t)["ok"])
        artifact = write_artifact(
            artifact_dir / f"diverge-seed{seed}.json",
            shrunk,
            {"kind": "fuzz-divergence", "seed": seed,
             "result": run_tiers(shrunk)},
        )
        print(f"  shrunk to {len(shrunk['ops'])} ops -> {artifact}")
    return 0 if not failing and not crashed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LLC/SF Prime+Probe attack reproduction (simulated)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--machine", default="skylake-small",
                       choices=sorted(MACHINE_PRESETS))
        p.add_argument("--env", default="cloud", choices=sorted(NOISE_PRESETS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--page-offset", type=lambda s: int(s, 0), default=0x240)
        p.add_argument(
            "--exposure-matched", action="store_true",
            help="scale the noise rate to match full-scale per-test exposure",
        )
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for trial fan-out (0 = all cores); "
            "results are identical for any value",
        )
        p.add_argument(
            "--rng", default=None, choices=RNG_MODES,
            help="RNG contract: 'serial' (default; draw-order goldens) or "
            "'counter' (event-keyed draws, enables the vectorized tiers); "
            "defaults to $REPRO_RNG or serial",
        )

    sub.add_parser("machines", help="list machine presets").set_defaults(
        fn=cmd_machines
    )
    sub.add_parser("noise", help="list noise presets").set_defaults(fn=cmd_noise)

    p = sub.add_parser("evset", help="construct SF eviction sets")
    common(p)
    p.add_argument("--algo", default="bins", choices=algorithm_names())
    p.add_argument("--trials", type=int, default=3)
    p.add_argument("--budget-ms", type=float, default=1000.0)
    p.set_defaults(fn=cmd_evset)

    p = sub.add_parser("monitor", help="monitor one SF set for noise")
    common(p)
    p.add_argument("--duration-us", type=float, default=500.0)
    p.set_defaults(fn=cmd_monitor)

    p = sub.add_parser("attack", help="run the end-to-end ECDSA attack")
    common(p)
    p.add_argument("--traces", type=int, default=3)
    p.set_defaults(fn=cmd_attack)

    p = sub.add_parser(
        "campaign",
        help="run a named trial campaign on the parallel engine "
        "(journaled, resumable)",
    )
    p.add_argument("positional_name", nargs="?", default=None,
                   metavar="NAME", choices=sorted(CLI_CAMPAIGNS),
                   help="campaign name (equivalent to --name)")
    p.add_argument("--name", default="construction",
                   choices=sorted(CLI_CAMPAIGNS))
    p.add_argument("--campaign-env", default="cloud",
                   choices=environment_names(),
                   help="named benchmark environment for the trials")
    p.add_argument("--algo", default="bins", choices=algorithm_names())
    p.add_argument("--trials", type=int, default=8)
    p.add_argument("--budget-ms", type=float, default=1000.0)
    p.add_argument("--seed", type=int, default=1000,
                   help="base seed of the campaign's trial seed stream")
    p.add_argument("--page-offset", type=lambda s: int(s, 0), default=0x240)
    p.add_argument("--filtered", action="store_true",
                   help="enable L2-driven candidate filtering (Table 4)")
    p.add_argument("--defenses", default=None,
                   help="defense-matrix: comma-separated defense names "
                   "(default: all of none,way-partition,ceaser,skew,"
                   "soft-copy)")
    p.add_argument("--stages", default=None,
                   help="defense-matrix: comma-separated pipeline stages "
                   "(prefix of construct,monitor,recover)")
    p.add_argument("--bulk-budget-ms", type=float, default=500.0,
                   help="defense-matrix: overall simulated deadline for "
                   "the bulk-construction stage (bounds trials whose "
                   "defense defeats construction)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores)")
    p.add_argument("--timeout-s", type=float, default=None,
                   help="per-trial wall-clock timeout in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="resubmissions allowed after worker crashes")
    p.add_argument("--batch", type=int, default=None,
                   help="trials per lockstep batch (default: REPRO_BATCH "
                   "or 1 = serial); results are identical for any value")
    p.add_argument("--journal-dir", default=str(DEFAULT_JOURNAL_DIR),
                   help="JSONL journal directory (reruns resume from it)")
    p.add_argument("--no-journal", action="store_true",
                   help="disable the result journal for this run")
    p.add_argument("--progress", action="store_true",
                   help="stream live progress (trials/s, ETA) to stderr")
    p.add_argument("--rng", default=None, choices=RNG_MODES,
                   help="RNG contract for every trial (sets REPRO_RNG; "
                   "default serial)")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser(
        "fleet",
        help="sharded, resumable campaign service "
        "(submit / status / resume / drain / aggregate)",
    )
    fleet_sub = p.add_subparsers(dest="verb", required=True)

    def fleet_common(fp):
        fp.add_argument("--fleet-dir", default=str(DEFAULT_FLEET_DIR),
                        help="root directory for fleet run state")
        fp.add_argument("--shard-size", type=int, default=256,
                        help="trials per shard (the dispatch/resume unit)")
        fp.add_argument("--max-inflight", type=int, default=2,
                        help="shards executing concurrently")
        fp.add_argument("--jobs-per-shard", type=int, default=1,
                        help="worker processes inside each shard (0 invalid)")
        fp.add_argument("--queue-depth", type=int, default=8,
                        help="bounded dispatch queue depth")
        fp.add_argument("--shard-retries", type=int, default=2,
                        help="retries (with backoff) for a crashed shard")
        fp.add_argument("--timeout-s", type=float, default=None,
                        help="per-trial wall-clock timeout in seconds")
        fp.add_argument("--batch", type=int, default=None,
                        help="trials per lockstep batch inside each shard "
                        "(default: REPRO_BATCH or 1 = serial)")
        fp.add_argument("--flush-every", type=int, default=64,
                        help="trials per durable segment flush")
        fp.add_argument("--stop-after-shards", type=int, default=None,
                        help="drain gracefully after N shards (ops/test knob)")
        fp.add_argument("--progress", action="store_true",
                        help="stream live progress (trials/s, ETA) to stderr")

    fp = fleet_sub.add_parser("submit", help="run a named campaign sharded")
    fp.add_argument("--name", default="noise-mc",
                    help="campaign to run (exec campaigns + fleet campaigns)")
    fp.add_argument("--campaign-env", default="cloud",
                    help="named environment / noise preset for the trials")
    fp.add_argument("--algo", default="bins", choices=algorithm_names())
    fp.add_argument("--trials", type=int, default=100_000)
    fp.add_argument("--budget-ms", type=float, default=1000.0)
    fp.add_argument("--seed", type=int, default=1000,
                    help="base seed of the campaign's trial seed stream")
    fp.add_argument("--page-offset", type=lambda s: int(s, 0), default=0x240)
    fp.add_argument("--filtered", action="store_true")
    fp.add_argument("--window-ms", type=float, default=0.5,
                    help="noise-mc exposure window per trial")
    fp.add_argument("--hosts", type=int, default=256,
                    help="dc-placement: simulated datacenter size")
    fp.add_argument("--dc-seed", type=int, default=0,
                    help="dc-placement: datacenter churn/placement seed")
    fleet_common(fp)
    fp.set_defaults(fn=cmd_fleet)

    for verb, help_text in (
        ("resume", "finish a run's pending shards"),
        ("drain", "finish only started shards, then compact"),
        ("status", "show run progress from disk"),
        ("aggregate", "stream a run's store into aggregates"),
    ):
        fp = fleet_sub.add_parser(verb, help=help_text)
        fp.add_argument("run", nargs="?" if verb == "status" else None,
                        default=None if verb == "status" else argparse.SUPPRESS,
                        help="run id (directory name or unique prefix)")
        if verb == "status":
            fp.add_argument("--verbose", action="store_true",
                            help="list complete shards too")
        if verb == "aggregate":
            fp.add_argument("--verify-serial", action="store_true",
                            help="re-run the campaign serially and require "
                            "value-identical aggregates")
        fleet_common(fp)
        fp.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "fuzz",
        help="differential-fuzz the four execution tiers "
        "(reference/batched/kernels/lanes) with invariant checking",
    )
    p.add_argument("--seeds", type=int, default=50,
                   help="number of traces (seed range is base..base+N-1)")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed of the fixed fuzz seed range")
    p.add_argument("--machine", default="tiny",
                   choices=sorted(MACHINE_PRESETS))
    p.add_argument("--noise", default="mix",
                   choices=sorted(NOISE_PRESETS) + ["mix"],
                   help="noise preset, or 'mix' to draw per trace")
    p.add_argument("--partition", default="mix",
                   choices=["never", "always", "mix"],
                   help="way-partitioning defense in the trace grammar")
    p.add_argument("--defense", default="mix",
                   choices=["mix", "none", "way-partition", "ceaser",
                            "skew", "soft-copy"],
                   help="pin the trace grammar's defense axis to one "
                   "defense (default: draw per trace)")
    p.add_argument("--ops", type=int, default=10,
                   help="operations drawn per trace (plus setup)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (0 = all cores)")
    p.add_argument("--timeout-s", type=float, default=None,
                   help="per-trace wall-clock timeout in seconds")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="batch-vs-serial differ: replay each trace on the "
                   "lanes tier alone and inside a lockstep batch of N, "
                   "and require bit-identical records and digests")
    p.add_argument("--artifact-dir", default=None,
                   help="where to write shrunk diverging-trace artifacts "
                   "(default .repro/fuzz)")
    p.add_argument("--self-test", action="store_true",
                   help="inject a replacement-policy mutation and prove "
                   "the harness catches it")
    p.add_argument("--replay", default=None, metavar="ARTIFACT",
                   help="re-run a saved trace artifact across all tiers")
    p.add_argument("--progress", action="store_true",
                   help="stream live progress (trials/s, ETA) to stderr")
    p.add_argument("--rng", default=None, choices=RNG_MODES,
                   help="RNG contract for generated traces (default: "
                   "REPRO_RNG or serial); replay refuses artifacts "
                   "captured under the other mode")
    p.set_defaults(fn=cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
