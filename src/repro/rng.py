"""Event-keyed (counter-based) RNG for order-independent stochastic draws.

The serial-order contract (DESIGN.md §2.6) draws every stochastic event —
noise Poisson arrivals, SF reuse-predictor insertions, L2-victim
write-backs, random-policy victims — from one shared serial stream in
strict access order.  That makes the draws *positional*: any execution
tier that reorders work (vectorized sweeps, cross-trial lockstep lanes)
would consume the stream in a different order and break bit-parity.

This module implements the alternative contract (DESIGN.md §2.7): every
draw is a pure function of *what* event it is, not *when* it is drawn::

    u = U01( mix(seed, stream_id, k1, k2, i) )

where ``stream_id`` names the draw site (one of the ``S_*`` constants),
``(k1, k2)`` address the event (e.g. ``(set_index, old_noise_clock)``
for a noise reconciliation window, ``(set_index, event_counter)`` for a
reuse draw), and ``i`` indexes multiple uniforms inside one event (a
Knuth Poisson loop).  Draws with the same key give the same value no
matter which tier draws them, in which order, or how many times — which
is exactly what legalizes vectorized and lockstep execution.

The mixer is SplitMix64 (Steele et al., "Fast splittable pseudorandom
number generators"), a 64-bit finalizer with full avalanche; it is not
cryptographic, which matches ``random.Random`` on the serial side.
"""

from __future__ import annotations

import math
import os
from typing import Optional

from ._util import make_rng

try:  # optional, mirrors repro.memsys.lanes
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
    _np = None
if os.environ.get("REPRO_NO_NUMPY"):
    _np = None

_MASK = (1 << 64) - 1

#: Stream identifiers — one per draw site class.  Never renumber: keyed
#: goldens (``tests/test_counter_parity.py``) pin the mapping.
S_NOISE_SF = 1      #: SF noise window, keyed (sidx, old_clock)
S_NOISE_LLC = 2     #: LLC noise window, keyed (sidx, old_clock)
S_SF_REUSE = 3      #: SF-victim reuse-predictor draw, keyed (sidx, counter)
S_L2_VICTIM = 4     #: L2-victim write-back draw, keyed (core, vline, counter)
S_VICTIM = 5        #: random-policy victim, keyed (cache_id, set_idx, counter)

#: Valid ``MachineConfig.rng_mode`` values.
RNG_MODES = ("serial", "counter")


def resolve_rng_mode(explicit: Optional[str] = None) -> str:
    """The RNG mode to use: explicit argument, else ``REPRO_RNG``, else serial."""
    mode = explicit if explicit else os.environ.get("REPRO_RNG", "serial")
    if mode not in RNG_MODES:
        raise ValueError(f"unknown rng mode {mode!r}; choose from {RNG_MODES}")
    return mode


def _mix64(z: int) -> int:
    """SplitMix64 finalizer on a 64-bit lane."""
    z &= _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


class CounterRng:
    """Keyed uniform/Poisson source for one trial (one machine seed).

    The 64-bit master key is derived from the machine seed through the
    same ``make_rng`` canonicalization the serial streams use, so the
    two modes share a seeding story but never a stream.
    """

    __slots__ = ("seed", "_key", "_h1", "_pre")

    #: Knuth's product-of-uniforms loop is O(lam); beyond this mean a
    #: normal approximation is indistinguishable for the cache model
    #: (same switch point as ``repro._util.poisson``).
    _NORMAL_CUTOFF = 64.0

    def __init__(self, seed) -> None:
        self.seed = seed
        self._key = make_rng(("counter-rng", seed)).getrandbits(64)
        self._h1 = {}
        #: Precomputed draw staging: ``(stream, k1, k2) -> n``, filled in
        #: bulk by group executors (:mod:`repro.memsys.batchplane`) and
        #: consumed by :meth:`noise_poisson`.  Draws are pure functions of
        #: the key, so staging extra values (or none) never changes any
        #: result — only how fast it is obtained.
        self._pre = {}

    # -- Scalar draws ------------------------------------------------------

    def u01(self, stream: int, k1: int, k2: int, i: int) -> float:
        """Uniform in (0, 1) for event ``(stream, k1, k2)``, index ``i``.

        Never returns exactly 0.0 or 1.0 (log-safe).

        The ``(stream, k1)`` half of the key is mixed once and memoized:
        draw sites address events by a fixed ``k1`` (a set index, a cache
        id) and a varying ``k2``/``i``, so the common case pays two
        finalizer rounds instead of four.  Values are identical either
        way — the cache is a strength reduction, not a contract change.
        """
        h1 = self._h1.get((stream, k1))
        if h1 is None:
            cache = self._h1
            if len(cache) >= 1 << 15:
                cache.clear()
            h1 = cache[(stream, k1)] = _mix64(self._key ^ _mix64(
                (stream * 0x9E3779B97F4A7C15 + k1) & _MASK))
        # Inlined _mix64(h1 + _mix64(k2 * C + i)) — the hot two rounds.
        z = (k2 * 0xD1342543DE82EF95 + i) & _MASK
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        h = (h1 + (z ^ (z >> 31))) & _MASK
        h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK
        h ^= h >> 31
        return ((h >> 11) + 0.5) * (2.0 ** -53)

    def randrange(self, stream: int, k1: int, k2: int, i: int, n: int) -> int:
        """Keyed uniform integer in ``[0, n)``."""
        return int(self.u01(stream, k1, k2, i) * n)

    def noise_poisson(self, stream: int, sidx: int, old: int, lam: float) -> int:
        """Poisson draw for one noise window, keyed ``(stream, sidx, old)``.

        Replicates the serial draw's shape (``BackgroundNoise._draw``):
        a one-uniform Bernoulli below 0.01, Knuth's loop up to the
        normal cutoff, then a Box-Muller normal approximation clamped
        at zero.  Each uniform in the event is addressed by its index,
        so the draw is pure in the key.
        """
        if lam <= 0.0:
            return 0
        pre = self._pre
        if pre:
            n = pre.pop((stream, sidx, old), None)
            if n is not None:
                return n
        u01 = self.u01
        if lam < 0.01:
            return 1 if u01(stream, sidx, old, 0) < lam else 0
        if lam > self._NORMAL_CUTOFF:
            u1 = u01(stream, sidx, old, 0)
            u2 = u01(stream, sidx, old, 1)
            z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
            n = int(round(lam + math.sqrt(lam) * z))
            return n if n > 0 else 0
        threshold = math.exp(-lam)
        k = 0
        p = 1.0
        while True:
            p *= u01(stream, sidx, old, k)
            if p <= threshold:
                return k
            k += 1

    # -- Bulk draws (numpy; scalar results identical) ----------------------

    def u01_many(self, stream: int, k1s, k2s, i: int):
        """Vector of keyed uniforms, one per ``(k1, k2)`` pair.

        Requires numpy (``k1s``/``k2s`` are int64 arrays); bit-identical
        to calling :meth:`u01` per element — uint64 array arithmetic
        wraps exactly like the masked scalar path.
        """
        np = _np
        with np.errstate(over="ignore"):
            return self._u01_many_nc(stream, k1s, k2s, i)

    def _u01_many_nc(self, stream: int, k1s, k2s, i: int):
        """:meth:`u01_many` body; caller owns the errstate context.

        Split out so bulk drivers (:meth:`noise_poisson_many`) pay one
        errstate enter/exit per *call*, not one per mix round.
        """
        np = _np
        mix = self._mix64_np_nc
        z = (np.uint64(stream * 0x9E3779B97F4A7C15 & _MASK)
             + k1s.astype(np.uint64))
        h = mix(np.uint64(self._key) ^ mix(z))
        z2 = (k2s.astype(np.uint64) * np.uint64(0xD1342543DE82EF95)
              + np.uint64(i))
        h = mix(h + mix(z2))
        return ((h >> np.uint64(11)).astype(np.float64) + 0.5) * (2.0 ** -53)

    @staticmethod
    def _mix64_np(z):
        np = _np
        with np.errstate(over="ignore"):
            return CounterRng._mix64_np_nc(z)

    @staticmethod
    def _mix64_np_nc(z):
        np = _np
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))

    @staticmethod
    def u01_keyed_many(keys, streams, k1s, k2s, i: int = 0):
        """Cross-trial keyed uniforms: one lane per ``(key, stream, k1, k2)``.

        Unlike :meth:`u01_many`, the master key and stream id vary per
        lane, so a group executor can evaluate draws for *many trials*
        (each with its own :class:`CounterRng`) in a single numpy pass —
        the serial-order contract structurally forbids this, the keyed
        contract makes it a strength reduction.  All inputs are uint64
        arrays; bit-identical to per-lane :meth:`u01`.
        """
        np = _np
        with np.errstate(over="ignore"):
            z = streams * np.uint64(0x9E3779B97F4A7C15) + k1s
            z = CounterRng._mix64_np(z)
            h = CounterRng._mix64_np(keys ^ z)
            z2 = k2s * np.uint64(0xD1342543DE82EF95) + np.uint64(i)
            h = CounterRng._mix64_np(h + CounterRng._mix64_np(z2))
        return ((h >> np.uint64(11)).astype(np.float64) + 0.5) * (2.0 ** -53)

    def noise_poisson_many(self, stream: int, sidxs, olds, lams):
        """Vector of keyed noise draws (numpy), scalar-identical per lane.

        All three scalar regimes are replicated lane-for-lane: the
        one-uniform Bernoulli below 0.01, Knuth's product loop up to the
        normal cutoff — run as masked vector iterations, where each
        lane's running product multiplies the *same* index-addressed
        uniforms in the same order as the scalar loop, so the IEEE
        result (and hence the count) is bit-identical — and the rare
        above-cutoff lanes through the scalar normal approximation.
        """
        np = _np
        out = np.zeros(len(lams), dtype=np.int64)
        with np.errstate(over="ignore"):
            pos = lams > 0.0
            small = pos & (lams < 0.01)
            if small.any():
                u = self._u01_many_nc(stream, sidxs[small], olds[small], 0)
                out[small] = (u < lams[small]).astype(np.int64)
            mid = pos & ~small & (lams <= self._NORMAL_CUTOFF)
            if mid.any():
                idx = np.nonzero(mid)[0]
                thr = np.exp(-lams[idx])
                p = np.ones(len(idx), dtype=np.float64)
                k1s = sidxs[idx]
                k2s = olds[idx]
                live = np.arange(len(idx))
                i = 0
                while len(live):
                    u = self._u01_many_nc(stream, k1s[live], k2s[live], i)
                    p[live] = pl = p[live] * u
                    done = pl <= thr[live]
                    if done.any():
                        out[idx[live[done]]] = i
                        live = live[~done]
                    i += 1
            big = pos & ~small & (lams > self._NORMAL_CUTOFF)
        if big.any():
            poisson = self.noise_poisson
            for j in np.nonzero(big)[0]:
                out[j] = poisson(stream, int(sidxs[j]), int(olds[j]),
                                 float(lams[j]))
        return out
