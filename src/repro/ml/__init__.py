"""Minimal machine-learning substrate (scikit-learn is not available here).

The paper trains a polynomial-kernel SVM to recognize target-set PSD
signatures (Section 7.2) and a random forest to classify iteration
boundaries in access traces (Section 7.3).  This subpackage provides both
model families from scratch:

* :mod:`repro.ml.svm` — kernel SVM trained with (simplified) SMO.
* :mod:`repro.ml.tree` / :mod:`repro.ml.forest` — CART decision trees and
  bagged random forests.
* :mod:`repro.ml.scaler` — feature standardization.
* :mod:`repro.ml.metrics` — accuracy / FPR / FNR / confusion counts.
"""

from .forest import RandomForestClassifier
from .metrics import BinaryClassificationReport, evaluate_binary
from .scaler import StandardScaler
from .svm import SVC, linear_kernel, poly_kernel, rbf_kernel
from .tree import DecisionTreeClassifier

__all__ = [
    "BinaryClassificationReport",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "SVC",
    "StandardScaler",
    "evaluate_binary",
    "linear_kernel",
    "poly_kernel",
    "rbf_kernel",
]
