"""CART decision-tree classifier (Gini impurity, axis-aligned splits)."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import NotTrainedError


@dataclass
class _Node:
    """Internal split node or leaf (leaf when ``feature`` is None)."""

    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    #: Per-class probability vector at a leaf.
    proba: Optional[np.ndarray] = None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return 1.0 - float(np.sum(p * p))


class DecisionTreeClassifier:
    """A CART tree; supports random feature subsetting for forests.

    Args:
        max_depth: Depth cap (None = unbounded).
        min_samples_split: Do not split nodes smaller than this.
        max_features: Features considered per split (None = all; used by
            random forests to decorrelate trees).
        seed: RNG seed for the feature subsampling.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self._root: Optional[_Node] = None
        self.classes_ = None

    def fit(self, x, y) -> "DecisionTreeClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        rng = random.Random(self.seed)
        self._root = self._build(x, y_idx, depth=0, rng=rng)
        return self

    def _leaf(self, y_idx: np.ndarray) -> _Node:
        counts = np.bincount(y_idx, minlength=len(self.classes_)).astype(float)
        return _Node(proba=counts / max(1.0, counts.sum()))

    def _build(self, x: np.ndarray, y_idx: np.ndarray, depth: int, rng) -> _Node:
        n, d = x.shape
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or len(np.unique(y_idx)) == 1
        ):
            return self._leaf(y_idx)
        if self.max_features is not None and self.max_features < d:
            features = rng.sample(range(d), self.max_features)
        else:
            features = range(d)
        n_classes = len(self.classes_)
        best = None  # (gini, feature, threshold)
        parent_counts = np.bincount(y_idx, minlength=n_classes)
        for f in features:
            values = x[:, f]
            order = np.argsort(values, kind="stable")
            sorted_vals = values[order]
            sorted_y = y_idx[order]
            left_counts = np.zeros(n_classes)
            right_counts = parent_counts.astype(float).copy()
            for i in range(n - 1):
                c = sorted_y[i]
                left_counts[c] += 1
                right_counts[c] -= 1
                if sorted_vals[i] == sorted_vals[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                score = (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n
                if best is None or score < best[0]:
                    threshold = (sorted_vals[i] + sorted_vals[i + 1]) / 2.0
                    best = (score, f, threshold)
        if best is None:
            return self._leaf(y_idx)
        _, feature, threshold = best
        mask = x[:, feature] <= threshold
        if mask.all() or not mask.any():
            return self._leaf(y_idx)
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._build(x[mask], y_idx[mask], depth + 1, rng),
            right=self._build(x[~mask], y_idx[~mask], depth + 1, rng),
        )

    # -- Inference ----------------------------------------------------------

    def _proba_one(self, row: np.ndarray) -> np.ndarray:
        node = self._root
        while node.proba is None:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.proba

    def predict_proba(self, x) -> np.ndarray:
        if self._root is None:
            raise NotTrainedError("DecisionTreeClassifier used before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.array([self._proba_one(row) for row in x])

    def predict(self, x) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.proba is not None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise NotTrainedError("DecisionTreeClassifier used before fit()")
        return walk(self._root)
