"""Random-forest classifier: bagged CART trees with feature subsampling.

Replaces the scikit-learn random forest the paper uses to predict whether a
detected memory access is an iteration boundary (Section 7.3).
"""

from __future__ import annotations

import math
import random
from typing import Optional

import numpy as np

from ..errors import NotTrainedError
from .tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Majority-vote ensemble of bootstrap-trained decision trees.

    Args:
        n_estimators: Number of trees.
        max_depth: Per-tree depth cap.
        max_features: Features per split; default sqrt(d).
        seed: Master seed (per-tree seeds derive from it).
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: Optional[int] = 12,
        max_features: Optional[int] = None,
        min_samples_split: int = 2,
        seed: int = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.seed = seed
        self._trees = None
        self.classes_ = None

    def fit(self, x, y) -> "RandomForestClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        n, d = x.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(math.sqrt(d)))
        rng = random.Random(self.seed)
        self._trees = []
        for t in range(self.n_estimators):
            idx = [rng.randrange(n) for _ in range(n)]  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                seed=rng.getrandbits(32),
            )
            tree.fit(x[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict_proba(self, x) -> np.ndarray:
        if self._trees is None:
            raise NotTrainedError("RandomForestClassifier used before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        # Align per-tree class vectors onto the forest's class list.
        total = np.zeros((len(x), len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_)}
        for tree in self._trees:
            proba = tree.predict_proba(x)
            for j, c in enumerate(tree.classes_):
                total[:, class_pos[c]] += proba[:, j]
        return total / len(self._trees)

    def predict(self, x) -> np.ndarray:
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]
