"""Binary-classification metrics (accuracy, FPR, FNR, confusion counts)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BinaryClassificationReport:
    """Confusion counts and derived rates for a binary classifier.

    The paper reports its SVM's false-negative rate (1.02%) and
    false-positive rate (0.01%) on a held-out validation set; this mirrors
    those definitions (positive = target set).
    """

    true_positives: int
    true_negatives: int
    false_positives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.true_negatives
            + self.false_positives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        return (self.true_positives + self.true_negatives) / max(1, self.total)

    @property
    def false_positive_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0

    @property
    def false_negative_rate(self) -> float:
        denom = self.false_negatives + self.true_positives
        return self.false_negatives / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        return 1.0 - self.false_negative_rate


def evaluate_binary(y_true, y_pred, positive=1) -> BinaryClassificationReport:
    """Build a report from label arrays; ``positive`` marks the target class."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    pos_t = y_true == positive
    pos_p = y_pred == positive
    return BinaryClassificationReport(
        true_positives=int(np.sum(pos_t & pos_p)),
        true_negatives=int(np.sum(~pos_t & ~pos_p)),
        false_positives=int(np.sum(~pos_t & pos_p)),
        false_negatives=int(np.sum(pos_t & ~pos_p)),
    )
