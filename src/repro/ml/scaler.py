"""Feature standardization (zero mean, unit variance per column)."""

from __future__ import annotations

import numpy as np

from ..errors import NotTrainedError


class StandardScaler:
    """Standardize features; constant columns are left centered only."""

    def __init__(self) -> None:
        self.mean_ = None
        self.scale_ = None

    def fit(self, x) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x):
        if self.mean_ is None:
            raise NotTrainedError("StandardScaler used before fit()")
        return (np.asarray(x, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, x):
        return self.fit(x).transform(x)
