"""Kernel support-vector classifier trained with simplified SMO.

This replaces scikit-learn's ``SVC(kernel="poly")`` used by the paper's
target-set scanner.  The training sets involved are small (hundreds to a
few thousand PSD feature vectors), where simplified SMO (Platt's algorithm
with random second-choice heuristics) converges quickly and exactly enough.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

import numpy as np

from ..errors import NotTrainedError, ReproError

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel() -> Kernel:
    """K(X, Z) = X Z^T."""

    def k(x: np.ndarray, z: np.ndarray) -> np.ndarray:
        return x @ z.T

    return k


def poly_kernel(degree: int = 3, gamma: float = 1.0, coef0: float = 1.0) -> Kernel:
    """K(X, Z) = (gamma * X Z^T + coef0) ** degree (the paper's kernel)."""

    def k(x: np.ndarray, z: np.ndarray) -> np.ndarray:
        return (gamma * (x @ z.T) + coef0) ** degree

    return k


def rbf_kernel(gamma: float = 1.0) -> Kernel:
    """K(x, z) = exp(-gamma * ||x - z||^2)."""

    def k(x: np.ndarray, z: np.ndarray) -> np.ndarray:
        x2 = np.sum(x * x, axis=1)[:, None]
        z2 = np.sum(z * z, axis=1)[None, :]
        return np.exp(-gamma * (x2 + z2 - 2.0 * (x @ z.T)))

    return k


class SVC:
    """Binary kernel SVM (labels +1 / -1 internally; any two labels accepted).

    Args:
        kernel: Kernel function; default cubic polynomial like the paper's.
        c: Soft-margin penalty.
        tol: KKT violation tolerance.
        max_passes: SMO stops after this many consecutive passes without an
            alpha update.
        seed: RNG seed for SMO's second-choice heuristic.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        c: float = 1.0,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iters: int = 2000,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel if kernel is not None else poly_kernel()
        self.c = c
        self.tol = tol
        self.max_passes = max_passes
        self.max_iters = max_iters
        self.seed = seed
        self._alpha = None
        self._b = 0.0
        self._x = None
        self._y = None
        self.classes_ = None

    # -- Training ----------------------------------------------------------

    def fit(self, x, y) -> "SVC":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y)
        classes = np.unique(y)
        if len(classes) != 2:
            raise ReproError("SVC is a binary classifier; got "
                             f"{len(classes)} classes")
        self.classes_ = classes
        ys = np.where(y == classes[1], 1.0, -1.0)
        n = len(x)
        k = self.kernel(x, x)
        alpha = np.zeros(n)
        b = 0.0
        rng = random.Random(self.seed)
        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iters:
            iters += 1
            changed = 0
            errors = (k @ (alpha * ys)) + b - ys  # E_i for all i
            for i in range(n):
                e_i = errors[i]
                if (ys[i] * e_i < -self.tol and alpha[i] < self.c) or (
                    ys[i] * e_i > self.tol and alpha[i] > 0
                ):
                    j = rng.randrange(n - 1)
                    if j >= i:
                        j += 1
                    e_j = float(k[j] @ (alpha * ys)) + b - ys[j]
                    a_i_old, a_j_old = alpha[i], alpha[j]
                    if ys[i] != ys[j]:
                        lo = max(0.0, a_j_old - a_i_old)
                        hi = min(self.c, self.c + a_j_old - a_i_old)
                    else:
                        lo = max(0.0, a_i_old + a_j_old - self.c)
                        hi = min(self.c, a_i_old + a_j_old)
                    if lo == hi:
                        continue
                    eta = 2.0 * k[i, j] - k[i, i] - k[j, j]
                    if eta >= 0:
                        continue
                    a_j = a_j_old - ys[j] * (e_i - e_j) / eta
                    a_j = min(hi, max(lo, a_j))
                    if abs(a_j - a_j_old) < 1e-7:
                        continue
                    a_i = a_i_old + ys[i] * ys[j] * (a_j_old - a_j)
                    alpha[i], alpha[j] = a_i, a_j
                    b1 = (
                        b
                        - e_i
                        - ys[i] * (a_i - a_i_old) * k[i, i]
                        - ys[j] * (a_j - a_j_old) * k[i, j]
                    )
                    b2 = (
                        b
                        - e_j
                        - ys[i] * (a_i - a_i_old) * k[i, j]
                        - ys[j] * (a_j - a_j_old) * k[j, j]
                    )
                    if 0 < a_i < self.c:
                        b = b1
                    elif 0 < a_j < self.c:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    errors = (k @ (alpha * ys)) + b - ys
                    changed += 1
            passes = passes + 1 if changed == 0 else 0
        support = alpha > 1e-8
        self._alpha = alpha[support] * ys[support]
        self._x = x[support]
        self._y = ys[support]
        self._b = b
        return self

    # -- Inference ----------------------------------------------------------

    def decision_function(self, x) -> np.ndarray:
        if self._alpha is None:
            raise NotTrainedError("SVC used before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if len(self._x) == 0:
            return np.full(len(x), self._b)
        return self.kernel(x, self._x) @ self._alpha + self._b

    def predict(self, x) -> np.ndarray:
        scores = self.decision_function(x)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])

    @property
    def n_support(self) -> int:
        """Number of support vectors kept after training."""
        return 0 if self._x is None else len(self._x)
