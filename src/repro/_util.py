"""Internal utilities: deterministic RNG helpers and distributions.

All stochastic components in the simulator draw from a ``random.Random``
instance that is threaded through explicitly (never module-global state), so
every experiment is reproducible from its seed.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed) -> random.Random:
    """Create a deterministic RNG from ``seed`` (int, str, tuple, or None)."""
    if seed is None or isinstance(seed, (int, float, str, bytes, bytearray)):
        return random.Random(seed)
    return random.Random(repr(seed))


def spawn_rng(rng: random.Random, tag: str) -> random.Random:
    """Derive an independent child RNG from ``rng``, labelled by ``tag``.

    Uses a draw from the parent combined with the tag so that child streams
    do not collide and adding a new child does not perturb existing ones
    drawn with different tags.
    """
    return random.Random(f"{rng.getrandbits(64)}:{tag}")


#: ``exp(-lam)`` memo for :func:`poisson`.  Noise reconciliation calls it
#: hundreds of thousands of times per trial with rates that are fixed per
#: config and elapsed windows that are sums of quantized latencies, so the
#: distinct-``lam`` population is small; bounded by a wholesale clear so a
#: pathological caller cannot grow it without limit.
_EXP_NEG: dict = {}
_EXP_NEG_CAP = 4096


def poisson(rng: random.Random, lam: float) -> int:
    """Draw from a Poisson distribution with mean ``lam``.

    Uses Knuth's multiplication method for small means and a normal
    approximation for large ones (lam > 64), which is more than accurate
    enough for background-noise event counts.  The inversion threshold
    ``exp(-lam)`` is memoized per distinct rate; the draw sequence itself
    is untouched, so the RNG stream is consumed draw-for-draw identically
    (pinned by ``tests/test_noise_draw.py``).
    """
    if lam <= 0.0:
        return 0
    if lam > 64.0:
        # Normal approximation with continuity correction.
        value = rng.gauss(lam, math.sqrt(lam))
        return max(0, int(round(value)))
    threshold = _EXP_NEG.get(lam)
    if threshold is None:
        if len(_EXP_NEG) >= _EXP_NEG_CAP:
            _EXP_NEG.clear()
        _EXP_NEG[lam] = threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= rng.random()
        if p <= threshold:
            return k
        k += 1


def poisson_many(rng, lams: Sequence[float]) -> List[int]:
    """Bulk Poisson draws, one per mean in ``lams``.

    Two source kinds (shared by both RNG modes):

    * a ``random.Random`` — draws are performed strictly in order,
      consuming the stream exactly as ``len(lams)`` sequential
      :func:`poisson` calls would (the serial-order contract holds;
      bulk uniform generation would reorder the stream, so there is
      deliberately no numpy fast path here);
    * a callable ``uniforms(n) -> sequence of n floats in (0, 1)`` with
      no ordering contract (e.g. a keyed counter-RNG adapter) — the
      Knuth loop is vectorized column-wise with numpy when available
      (one uniform column per iteration over the still-active lanes),
      with a scalar fallback otherwise.

    Large means (> 64) use the same normal approximation as
    :func:`poisson`, consuming two uniforms per draw (Box-Muller).
    Keyed callers that need draw-for-draw parity with scalar keyed
    draws should use :meth:`repro.rng.CounterRng.noise_poisson_many`
    instead — this helper only promises the right *distribution* for
    callable sources, not a pinned uniform-consumption order.
    """
    if isinstance(rng, random.Random):
        return [poisson(rng, lam) for lam in lams]
    if not callable(rng):
        raise TypeError(
            "poisson_many needs a random.Random or a uniforms(n) callable"
        )
    np = _numpy()
    n = len(lams)
    if np is None or n < 8:
        return [_poisson_from_uniforms(rng, lam) for lam in lams]
    lam_arr = np.asarray(lams, dtype=np.float64)
    out = np.zeros(n, dtype=np.int64)
    big = lam_arr > 64.0
    if big.any():
        for j in np.nonzero(big)[0]:
            u1, u2 = rng(2)
            z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
            lam = float(lam_arr[j])
            out[j] = max(0, int(round(lam + math.sqrt(lam) * z)))
    active = np.nonzero(~big & (lam_arr > 0.0))[0]
    if active.size:
        threshold = np.exp(-lam_arr[active])
        p = np.ones(active.size, dtype=np.float64)
        k = np.zeros(active.size, dtype=np.int64)
        live = np.arange(active.size)
        while live.size:
            u = np.asarray(rng(live.size), dtype=np.float64)
            p[live] = p[live] * u
            done = p[live] <= threshold[live]
            k[live[~done]] += 1
            live = live[~done]
        out[active] = k
    return out.tolist()


def _poisson_from_uniforms(uniforms, lam: float) -> int:
    """Scalar Knuth/normal Poisson over a bulk-uniform callable."""
    if lam <= 0.0:
        return 0
    if lam > 64.0:
        u1, u2 = uniforms(2)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return max(0, int(round(lam + math.sqrt(lam) * z)))
    threshold = math.exp(-lam)
    k = 0
    p = 1.0
    while True:
        p *= uniforms(1)[0]
        if p <= threshold:
            return k
        k += 1


def _numpy():
    """The numpy module, or None (import deferred; REPRO_NO_NUMPY honored)."""
    global _np_mod
    if _np_mod is _NP_UNSET:
        import os

        if os.environ.get("REPRO_NO_NUMPY"):
            _np_mod = None
        else:
            try:
                import numpy

                _np_mod = numpy
            except ImportError:  # pragma: no cover - via REPRO_NO_NUMPY leg
                _np_mod = None
    return _np_mod


_NP_UNSET = object()
_np_mod = _NP_UNSET


def exponential(rng: random.Random, rate: float) -> float:
    """Draw an exponential inter-arrival time for a Poisson process."""
    if rate <= 0.0:
        return math.inf
    return rng.expovariate(rate)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def median(values: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100]."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def chunked(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into ``n_chunks`` contiguous groups of near-equal size.

    The first ``len(items) % n_chunks`` groups get one extra element.  Groups
    may be empty if there are fewer items than chunks.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    base, extra = divmod(len(items), n_chunks)
    groups: List[List[T]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        groups.append(list(items[start : start + size]))
        start += size
    return groups
