"""Trial and campaign abstractions for the deterministic execution engine.

A *trial* is one independent seeded unit of work: a picklable callable
applied to a picklable config with an explicit seed.  A *campaign* is an
ordered list of trials whose seeds come from a deterministic per-campaign
stream, so the result of trial ``i`` depends only on ``(fn, config, seed)``
— never on worker count, scheduling order, or which process ran it.  That
is the property that lets :mod:`repro.exec.executor` fan a campaign out
over a process pool while staying bit-identical to serial execution.

Campaigns also carry a *fingerprint* — a hash of name, configs, seeds, and
code version — which keys the on-disk result journal
(:mod:`repro.exec.journal`): rerunning the same campaign resumes from its
journal, and any change to the inputs lands in a fresh one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def arithmetic_seeds(base_seed: int, n: int, stride: int = 1) -> Tuple[int, ...]:
    """``base_seed, base_seed + stride, ...`` — the historical convention.

    The benchmark harness has always seeded trial ``i`` with
    ``base_seed + i``; campaigns that must reproduce pre-engine results
    byte-for-byte use this stream.
    """
    return tuple(base_seed + i * stride for i in range(n))


def seed_stream(base_seed: int, n: int, tag: str = "") -> Tuple[int, ...]:
    """``n`` well-separated 63-bit seeds derived from ``(base_seed, tag)``.

    Hashed derivation (unlike :func:`arithmetic_seeds`) keeps per-trial RNG
    streams statistically independent even when callers use adjacent base
    seeds, and adding trials never perturbs earlier ones.
    """
    seeds = []
    for i in range(n):
        digest = hashlib.sha256(
            f"repro.exec:{base_seed}:{tag}:{i}".encode()
        ).digest()
        seeds.append(int.from_bytes(digest[:8], "big") >> 1)
    return tuple(seeds)


class ResultCodec:
    """Round-trips trial results through JSON for the journal.

    The identity codec journals anything :func:`json.dumps` accepts;
    campaigns whose trials return richer objects supply a codec (see
    :func:`dataclass_codec`).
    """

    def encode(self, value: Any) -> Any:
        return value

    def decode(self, obj: Any) -> Any:
        return obj


IDENTITY_CODEC = ResultCodec()


class _DataclassCodec(ResultCodec):
    def __init__(self, cls) -> None:
        if not dataclasses.is_dataclass(cls):
            raise TypeError(f"{cls!r} is not a dataclass")
        self._cls = cls

    def encode(self, value: Any) -> Any:
        return dataclasses.asdict(value)

    def decode(self, obj: Any) -> Any:
        return self._cls(**obj)


def dataclass_codec(cls) -> ResultCodec:
    """A codec that journals instances of a flat dataclass ``cls``."""
    return _DataclassCodec(cls)


def stable_repr(obj: Any) -> str:
    """A deterministic textual form of a config for fingerprinting.

    Dataclasses render as sorted field maps, dicts sort their keys, and
    containers recurse; the result is stable across processes and runs
    (no memory addresses, no hash randomization).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: stable_repr(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        body = ",".join(f"{k}={v}" for k, v in sorted(fields.items()))
        return f"{type(obj).__name__}({body})"
    if isinstance(obj, dict):
        body = ",".join(
            f"{stable_repr(k)}:{stable_repr(v)}" for k, v in sorted(obj.items())
        )
        return "{" + body + "}"
    if isinstance(obj, (list, tuple)):
        body = ",".join(stable_repr(v) for v in obj)
        return ("[" if isinstance(obj, list) else "(") + body + (
            "]" if isinstance(obj, list) else ")"
        )
    if isinstance(obj, (str, int, bool, float, bytes)) or obj is None:
        return repr(obj)
    if callable(obj):
        return f"{getattr(obj, '__module__', '?')}.{getattr(obj, '__qualname__', repr(obj))}"
    return repr(obj)


def code_version() -> str:
    """The code identity baked into fingerprints (package version)."""
    from repro import __version__

    return __version__


@dataclasses.dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit: ``fn(config, seed)`` at position ``index``."""

    fn: Callable[[Any, int], Any]
    config: Any
    seed: int
    index: int


@dataclasses.dataclass(frozen=True)
class Campaign:
    """An ordered set of seeded trials over one trial function.

    ``configs`` holds one config per trial; ``seeds`` must be the same
    length.  ``codec`` round-trips results through the JSONL journal.
    """

    name: str
    fn: Callable[[Any, int], Any]
    configs: Tuple[Any, ...]
    seeds: Tuple[int, ...]
    codec: ResultCodec = IDENTITY_CODEC

    def __post_init__(self) -> None:
        if len(self.configs) != len(self.seeds):
            raise ValueError(
                f"campaign {self.name!r}: {len(self.configs)} configs "
                f"vs {len(self.seeds)} seeds"
            )

    @classmethod
    def build(
        cls,
        name: str,
        fn: Callable[[Any, int], Any],
        config: Any,
        trials: int,
        base_seed: int = 0,
        seed_mode: str = "hashed",
        codec: ResultCodec = IDENTITY_CODEC,
    ) -> "Campaign":
        """A homogeneous campaign: ``trials`` runs of one config.

        ``seed_mode`` picks the stream: ``"hashed"`` (independent streams,
        the default for new campaigns) or ``"arithmetic"`` (``base_seed + i``,
        reproducing the pre-engine benchmark convention).
        """
        if seed_mode == "hashed":
            seeds = seed_stream(base_seed, trials, tag=name)
        elif seed_mode == "arithmetic":
            seeds = arithmetic_seeds(base_seed, trials)
        else:
            raise ValueError(f"unknown seed_mode {seed_mode!r}")
        return cls(
            name=name,
            fn=fn,
            configs=tuple(config for _ in range(trials)),
            seeds=seeds,
            codec=codec,
        )

    def __len__(self) -> int:
        return len(self.configs)

    def trials(self) -> List[TrialSpec]:
        """The trial list, in campaign order (= result order)."""
        return [
            TrialSpec(fn=self.fn, config=cfg, seed=seed, index=i)
            for i, (cfg, seed) in enumerate(zip(self.configs, self.seeds))
        ]

    def fingerprint(self, version: Optional[str] = None) -> str:
        """Hash of (name, trial fn, configs, seeds, code version).

        Keys the result journal: equal fingerprints mean the journal's
        records are valid for this campaign.
        """
        payload: Dict[str, Any] = {
            "name": self.name,
            "fn": stable_repr(self.fn),
            "configs": [stable_repr(c) for c in self.configs],
            "seeds": list(self.seeds),
            "code_version": version if version is not None else code_version(),
        }
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()
