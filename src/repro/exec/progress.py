"""Live progress reporting for running campaigns.

The reporter keeps running counters, renders them through
:func:`repro.analysis.format_progress` (so every surface shows the same
line), and rate-limits output so a thousand fast trials do not spam the
terminal.  It is deliberately side-effect-only: the authoritative
:class:`~repro.analysis.progress.CampaignMetrics` for a run is computed
by the executor, not by the reporter.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from ..analysis.progress import CampaignMetrics, format_progress


class ProgressReporter:
    """Streams one-line progress updates for a campaign run."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval_s: float = 0.5,
        enabled: bool = True,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.enabled = enabled
        self.label = "campaign"
        self.total = 0
        self.cached = 0
        self.completed = 0
        self.failed = 0
        self.retried = 0
        self._t0 = 0.0
        self._last_emit = 0.0

    def start(self, label: str, total: int, cached: int = 0) -> None:
        self.label = label
        self.total = total
        self.cached = cached
        self.completed = self.failed = self.retried = 0
        self._t0 = time.monotonic()
        self._last_emit = 0.0
        if self.enabled and cached:
            self._write(f"{label}: {cached}/{total} trials cached from journal")

    def update(self, record) -> None:
        """Account one freshly finished trial record."""
        self.completed += 1
        if not record.ok:
            self.failed += 1
        if record.attempts > 1:
            self.retried += record.attempts - 1
        now = time.monotonic()
        if not self.enabled or now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        self._write(format_progress(self.snapshot(), label=self.label))

    def snapshot(self) -> CampaignMetrics:
        return CampaignMetrics(
            total=self.total,
            completed=self.completed,
            cached=self.cached,
            failed=self.failed,
            retried=self.retried,
            elapsed_s=time.monotonic() - self._t0,
        )

    def finish(self, metrics: CampaignMetrics) -> None:
        if self.enabled:
            self._write(format_progress(metrics, label=self.label) + " | done")

    def _write(self, line: str) -> None:
        print(line, file=self.stream, flush=True)
