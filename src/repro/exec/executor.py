"""Shared-nothing campaign execution: process-pool fan-out, serial parity.

The engine's contract is *determinism*: a trial's outcome is a pure
function of its ``(fn, config, seed)`` spec, so the executor may run
trials in any order on any number of workers and still produce results
identical to a serial loop.  Everything here is plumbing in service of
that contract:

* ``jobs > 1`` fans trials out over a ``ProcessPoolExecutor`` (fork
  context where available, so trial functions defined in scripts and
  benchmark modules pickle by reference).
* Per-trial timeouts are enforced *inside* the worker with ``SIGALRM``,
  so a runaway trial is cut off without killing its worker.
* A worker process dying (OOM, segfault, ``os._exit``) breaks the pool;
  the engine restarts it and resubmits the unfinished trials, bounding
  resubmissions per trial by ``max_retries`` before recording the trial
  as ``crashed``.
* ``jobs == 1`` — or a pool that cannot be created at all (restricted
  sandboxes) — degrades to an in-process serial loop over the same specs.

Results are returned sorted by trial index and, when a
:class:`~repro.exec.journal.CampaignJournal` is supplied, appended to the
journal as they finish so a killed campaign resumes where it stopped.
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.progress import CampaignMetrics
from ..errors import ReproError
from .journal import CampaignJournal
from .spec import Campaign, TrialSpec


class TrialTimeout(ReproError):
    """Raised inside a worker when a trial exceeds its time budget."""


@dataclasses.dataclass(frozen=True)
class ExecPolicy:
    """How to run a campaign (not *what* to run — that's the Campaign).

    ``jobs=None`` means one worker per available core.  ``timeout_s`` is
    the per-trial budget (None = unlimited).  ``max_retries`` bounds how
    many times a trial may be resubmitted after worker crashes.
    """

    jobs: Optional[int] = 1
    timeout_s: Optional[float] = None
    max_retries: int = 1

    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        return self.jobs


def default_jobs() -> int:
    """Worker count for ``jobs=None``: the cores this process may use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclasses.dataclass(frozen=True)
class TrialResult:
    """One trial's outcome as the engine records it."""

    index: int
    seed: int
    status: str  # "ok" | "failed" | "timeout" | "crashed"
    value: object = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    attempts: int = 1
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """All trial records of one campaign run, in trial-index order."""

    name: str
    fingerprint: str
    records: Tuple[TrialResult, ...]
    metrics: CampaignMetrics

    def values(self) -> List[object]:
        """Successful results in campaign order — worker-count invariant."""
        return [r.value for r in self.records if r.ok]

    def failures(self) -> List[TrialResult]:
        return [r for r in self.records if not r.ok]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    def raise_on_failure(self) -> "CampaignResult":
        """Propagate the first failure like a serial loop would have."""
        for rec in self.records:
            if not rec.ok:
                raise ReproError(
                    f"campaign {self.name!r} trial {rec.index} "
                    f"(seed {rec.seed}) {rec.status}: {rec.error}"
                )
        return self


@contextlib.contextmanager
def _trial_alarm(timeout_s: Optional[float]):
    """Raise :class:`TrialTimeout` after ``timeout_s`` wall seconds.

    Uses ``SIGALRM``; silently a no-op off the main thread or on
    platforms without ``setitimer`` (the trial then just runs to
    completion).
    """
    usable = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise TrialTimeout(f"trial exceeded {timeout_s:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_spec(spec: TrialSpec, timeout_s: Optional[float]) -> TrialResult:
    """Run one trial in this process, mapping outcomes to a record."""
    start = time.perf_counter()
    try:
        with _trial_alarm(timeout_s):
            value = spec.fn(spec.config, spec.seed)
        status, error = "ok", None
    except TrialTimeout as exc:
        value, status, error = None, "timeout", str(exc)
    except Exception as exc:  # noqa: BLE001 - the record carries the error
        value, status, error = None, "failed", f"{type(exc).__name__}: {exc}"
    return TrialResult(
        index=spec.index,
        seed=spec.seed,
        status=status,
        value=value,
        error=error,
        elapsed_s=time.perf_counter() - start,
    )


def _pool_worker(spec: TrialSpec, timeout_s: Optional[float]) -> TrialResult:
    """Top-level pool entry point (must be picklable by reference)."""
    return _execute_spec(spec, timeout_s)


def _mp_context():
    """Prefer fork so benchmark-module trial functions resolve in workers."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


class _ParallelRun:
    """One parallel drain of a set of specs, with crash recovery."""

    def __init__(
        self, policy: ExecPolicy, emit: Callable[[TrialResult, Optional[int]], None]
    ):
        self.policy = policy
        self.emit = emit
        self.restarts = 0
        self.retried = 0

    def run(self, specs: List[TrialSpec]) -> List[TrialSpec]:
        """Execute specs; returns specs left over if no pool could be made."""
        pending: Dict[int, TrialSpec] = {s.index: s for s in specs}
        attempts: Dict[int, int] = {s.index: 0 for s in specs}
        jobs = self.policy.resolved_jobs()
        while pending:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending)), mp_context=_mp_context()
                )
            except (OSError, ValueError, PermissionError):
                return list(pending.values())
            broken = False
            try:
                with pool:
                    futures = {}
                    try:
                        for spec in pending.values():
                            attempts[spec.index] += 1
                            if attempts[spec.index] > 1:
                                self.retried += 1
                            futures[
                                pool.submit(
                                    _pool_worker, spec, self.policy.timeout_s
                                )
                            ] = spec
                    except (OSError, RuntimeError, BrokenProcessPool):
                        # Worker processes could not be spawned at all.
                        if not futures:
                            return list(pending.values())
                        broken = True
                    not_done = set(futures)
                    while not_done and not broken:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            spec = futures[future]
                            try:
                                record = future.result()
                            except BrokenProcessPool:
                                broken = True
                                continue
                            except Exception as exc:  # noqa: BLE001
                                record = TrialResult(
                                    index=spec.index,
                                    seed=spec.seed,
                                    status="failed",
                                    error=f"{type(exc).__name__}: {exc}",
                                )
                            self.emit(record, attempts[spec.index])
                            pending.pop(spec.index, None)
                    if broken:
                        # Let any still-healthy workers finish, then harvest
                        # every result that landed before the breakage so it
                        # is not re-executed after the restart.
                        pool.shutdown(wait=True)
                        for future, spec in futures.items():
                            if spec.index not in pending or not future.done():
                                continue
                            try:
                                record = future.result()
                            except Exception:  # noqa: BLE001
                                continue
                            self.emit(record, attempts[spec.index])
                            pending.pop(spec.index, None)
            except BrokenProcessPool:
                broken = True
            if broken:
                self.restarts += 1
                for index, spec in list(pending.items()):
                    if attempts[index] > self.policy.max_retries:
                        self.emit(
                            TrialResult(
                                index=index,
                                seed=spec.seed,
                                status="crashed",
                                error=(
                                    "worker process died; retries exhausted "
                                    f"after {attempts[index]} attempts"
                                ),
                                attempts=attempts[index],
                            ),
                            attempts[index],
                        )
                        pending.pop(index)
        return []


def run_campaign(
    campaign: Campaign,
    policy: Optional[ExecPolicy] = None,
    journal: Optional[CampaignJournal] = None,
    reporter: Optional["ProgressReporter"] = None,
) -> CampaignResult:
    """Execute ``campaign`` under ``policy`` and return ordered results.

    With a journal, previously finished trials are served from disk
    (``cached=True`` records) and fresh ones are appended as they
    complete.  With a reporter, progress lines stream while running.
    """
    from .progress import ProgressReporter  # local: avoid import cycle

    policy = policy or ExecPolicy()
    specs = campaign.trials()
    fingerprint = journal.fingerprint if journal else campaign.fingerprint()

    records: Dict[int, TrialResult] = {}
    if journal is not None:
        for index, obj in journal.load_completed().items():
            records[index] = TrialResult(
                index=index,
                seed=obj["seed"],
                status="ok",
                value=obj["value"],
                elapsed_s=obj.get("elapsed_s", 0.0),
                attempts=obj.get("attempts", 1),
                cached=True,
            )
    cached = len(records)
    pending = [s for s in specs if s.index not in records]

    if reporter is None:
        reporter = ProgressReporter(enabled=False)
    reporter.start(campaign.name, total=len(specs), cached=cached)

    started = time.perf_counter()
    attempts_seen: Dict[int, int] = {}

    def emit(record: TrialResult, known_attempts: Optional[int] = None) -> None:
        if known_attempts is not None and record.attempts != known_attempts:
            record = dataclasses.replace(record, attempts=known_attempts)
        records[record.index] = record
        if journal is not None:
            journal.append(record)
        reporter.update(record)

    restarts = retried = 0
    leftover = pending
    if pending and policy.resolved_jobs() > 1 and len(pending) > 1:
        run = _ParallelRun(policy, emit)
        leftover = run.run(pending)
        restarts, retried = run.restarts, run.retried

    # Serial path: jobs == 1, a single pending trial, or pool unavailable.
    for spec in leftover:
        emit(_execute_spec(spec, policy.timeout_s))

    elapsed = time.perf_counter() - started
    ordered = tuple(records[i] for i in sorted(records))
    executed = [r for r in ordered if not r.cached]
    metrics = CampaignMetrics(
        total=len(specs),
        completed=len(executed),
        cached=cached,
        failed=sum(1 for r in ordered if not r.ok),
        retried=retried,
        pool_restarts=restarts,
        elapsed_s=elapsed,
    )
    reporter.finish(metrics)
    return CampaignResult(
        name=campaign.name,
        fingerprint=fingerprint,
        records=ordered,
        metrics=metrics,
    )
