"""Shared-nothing campaign execution: process-pool fan-out, serial parity.

The engine's contract is *determinism*: a trial's outcome is a pure
function of its ``(fn, config, seed)`` spec, so the executor may run
trials in any order on any number of workers and still produce results
identical to a serial loop.  Everything here is plumbing in service of
that contract:

* ``jobs > 1`` fans trials out over a ``ProcessPoolExecutor`` (fork
  context where available, so trial functions defined in scripts and
  benchmark modules pickle by reference).
* Per-trial timeouts are enforced *inside* the worker with ``SIGALRM``,
  so a runaway trial is cut off without killing its worker.
* A worker process dying (OOM, segfault, ``os._exit``) breaks the pool;
  the engine restarts it and resubmits the unfinished trials, bounding
  resubmissions per trial by ``max_retries`` before recording the trial
  as ``crashed``.
* ``jobs == 1`` — or a pool that cannot be created at all (restricted
  sandboxes) — degrades to an in-process serial loop over the same specs.

Results are returned sorted by trial index and, when a
:class:`~repro.exec.journal.CampaignJournal` is supplied, appended to the
journal as they finish so a killed campaign resumes where it stopped.
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.progress import CampaignMetrics
from ..errors import ReproError
from .journal import CampaignJournal
from .spec import Campaign, TrialSpec


class TrialTimeout(ReproError):
    """Raised inside a worker when a trial exceeds its time budget."""


@dataclasses.dataclass(frozen=True)
class ExecPolicy:
    """How to run a campaign (not *what* to run — that's the Campaign).

    ``jobs=None`` means one worker per available core.  ``timeout_s`` is
    the per-trial budget (None = unlimited).  ``max_retries`` bounds how
    many times a trial may be resubmitted after worker crashes.
    ``batch`` groups trials into in-process lockstep batches (see
    :mod:`repro.memsys.batchplane`): ``None`` defers to the
    ``REPRO_BATCH`` environment variable, and any value resolves back to
    serial when numpy is absent or a per-trial timeout is requested
    (``SIGALRM`` cannot interrupt lane threads).  With ``jobs > 1`` a
    whole batch becomes the pool-task unit, amortizing submit/pickle
    overhead across its trials.
    """

    jobs: Optional[int] = 1
    timeout_s: Optional[float] = None
    max_retries: int = 1
    batch: Optional[int] = None

    def resolved_jobs(self) -> int:
        if self.jobs is None:
            return default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        return self.jobs

    def resolved_batch(self) -> int:
        """Trials per lockstep batch; ``None`` defers to ``REPRO_BATCH``."""
        batch = self.batch
        if batch is None:
            batch = int(os.environ.get("REPRO_BATCH", "1") or 1)
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return batch


def default_jobs() -> int:
    """Worker count for ``jobs=None``: the cores this process may use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


@dataclasses.dataclass(frozen=True)
class TrialResult:
    """One trial's outcome as the engine records it."""

    index: int
    seed: int
    status: str  # "ok" | "failed" | "timeout" | "crashed"
    value: object = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    attempts: int = 1
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclasses.dataclass(frozen=True)
class CampaignResult:
    """All trial records of one campaign run, in trial-index order."""

    name: str
    fingerprint: str
    records: Tuple[TrialResult, ...]
    metrics: CampaignMetrics

    def values(self) -> List[object]:
        """Successful results in campaign order — worker-count invariant."""
        return [r.value for r in self.records if r.ok]

    def failures(self) -> List[TrialResult]:
        return [r for r in self.records if not r.ok]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.records)

    def raise_on_failure(self) -> "CampaignResult":
        """Propagate the first failure like a serial loop would have."""
        for rec in self.records:
            if not rec.ok:
                raise ReproError(
                    f"campaign {self.name!r} trial {rec.index} "
                    f"(seed {rec.seed}) {rec.status}: {rec.error}"
                )
        return self


@contextlib.contextmanager
def _trial_alarm(timeout_s: Optional[float]):
    """Raise :class:`TrialTimeout` after ``timeout_s`` wall seconds.

    Uses ``SIGALRM``; silently a no-op off the main thread or on
    platforms without ``setitimer`` (the trial then just runs to
    completion).
    """
    usable = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise TrialTimeout(f"trial exceeded {timeout_s:g}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_spec(spec: TrialSpec, timeout_s: Optional[float]) -> TrialResult:
    """Run one trial in this process, mapping outcomes to a record."""
    start = time.perf_counter()
    try:
        with _trial_alarm(timeout_s):
            value = spec.fn(spec.config, spec.seed)
        status, error = "ok", None
    except TrialTimeout as exc:
        value, status, error = None, "timeout", str(exc)
    except Exception as exc:  # noqa: BLE001 - the record carries the error
        value, status, error = None, "failed", f"{type(exc).__name__}: {exc}"
    return TrialResult(
        index=spec.index,
        seed=spec.seed,
        status=status,
        value=value,
        error=error,
        elapsed_s=time.perf_counter() - start,
    )


def _pool_worker(spec: TrialSpec, timeout_s: Optional[float]) -> TrialResult:
    """Top-level pool entry point (must be picklable by reference)."""
    return _execute_spec(spec, timeout_s)


def run_trial_batch(
    specs: List[TrialSpec], timeout_s: Optional[float] = None
) -> List[TrialResult]:
    """Run ``specs`` as one in-process lockstep batch; one record each.

    Each trial executes on its own lane thread of a
    :class:`~repro.memsys.batchplane.BatchSession`, so its machine,
    RNG streams, and clock are untouched by its batch-mates and the
    records are bit-identical to a serial loop over the same specs.
    Falls back to a plain serial loop when batching is unsupported.
    """
    from ..memsys import batchplane

    thunks = [(lambda s=s: _execute_spec(s, timeout_s)) for s in specs]
    records = []
    for spec, outcome in zip(specs, batchplane.run_batched(thunks)):
        record = outcome.value
        if record is None:  # skipped lane / non-Exception escape
            record = TrialResult(
                index=spec.index,
                seed=spec.seed,
                status="failed",
                error=f"{type(outcome.error).__name__}: {outcome.error}",
            )
        records.append(record)
    return records


def _pool_worker_batch(
    specs: List[TrialSpec], timeout_s: Optional[float]
) -> List[TrialResult]:
    """Top-level pool entry point for one batched group of trials."""
    return run_trial_batch(specs, timeout_s)


def _chunk_specs(specs: List[TrialSpec], batch: int) -> List[List[TrialSpec]]:
    return [specs[i : i + batch] for i in range(0, len(specs), batch)]


def _mp_context():
    """Prefer fork so benchmark-module trial functions resolve in workers."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None


#: Sentinel: an isolated final attempt's own pool died — the group is
#: definitively the crasher, not collateral of a pool-mate.
_CRASHED = object()


class _ParallelRun:
    """One parallel drain of a set of specs, with crash recovery.

    The dispatch unit is a *group* of specs: one spec per task in the
    default ``batch == 1`` mode (submitted through ``_pool_worker``,
    byte-identical to the historical path), or a lockstep batch of up to
    ``batch`` specs (submitted through ``_pool_worker_batch``).  Crash
    retry bookkeeping is per group — a worker death re-runs the whole
    group, which is sound because trials are pure functions of their
    specs.
    """

    def __init__(
        self,
        policy: ExecPolicy,
        emit: Callable[[TrialResult, Optional[int]], None],
        batch: int = 1,
    ):
        self.policy = policy
        self.emit = emit
        self.batch = batch
        self.restarts = 0
        self.retried = 0

    def _submit(self, pool, group: List[TrialSpec]):
        if self.batch > 1:
            return pool.submit(_pool_worker_batch, group, self.policy.timeout_s)
        return pool.submit(_pool_worker, group[0], self.policy.timeout_s)

    def _emit_group(
        self, group: List[TrialSpec], result, attempts: int
    ) -> None:
        records = result if isinstance(result, list) else [result]
        for record in records:
            self.emit(record, attempts)

    def _final_attempt(self, group: List[TrialSpec]):
        """Re-run an out-of-retries group alone in a one-worker pool.

        A broken shared pool cannot say *which* group killed the worker:
        every in-flight future reports ``BrokenProcessPool``, so the
        culprit and its innocent pool-mates are indistinguishable.
        Condemning on that evidence alone intermittently marks healthy
        trials crashed.  Because trials are pure functions of their
        specs, the final charged attempt can instead be re-executed in
        isolation, where a breakage convicts this group and this group
        only.  Returns the group's records, ``_CRASHED`` if the
        isolated pool died too, or ``None`` if no pool could be made
        (caller falls back to the historical verdict).
        """
        try:
            pool = ProcessPoolExecutor(max_workers=1, mp_context=_mp_context())
        except (OSError, ValueError, PermissionError):
            return None
        try:
            with pool:
                return self._submit(pool, group).result()
        except (BrokenProcessPool, OSError, RuntimeError):
            return _CRASHED
        except Exception as exc:  # noqa: BLE001 - worker-raised, pool healthy
            return [
                TrialResult(
                    index=spec.index,
                    seed=spec.seed,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                )
                for spec in group
            ]

    def run(self, specs: List[TrialSpec]) -> List[TrialSpec]:
        """Execute specs; returns specs left over if no pool could be made."""
        groups = _chunk_specs(specs, self.batch)
        pending: Dict[int, List[TrialSpec]] = {g[0].index: g for g in groups}
        attempts: Dict[int, int] = {key: 0 for key in pending}
        jobs = self.policy.resolved_jobs()
        while pending:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending)), mp_context=_mp_context()
                )
            except (OSError, ValueError, PermissionError):
                return [s for g in pending.values() for s in g]
            broken = False
            try:
                with pool:
                    futures = {}
                    try:
                        for key, group in pending.items():
                            attempts[key] += 1
                            if attempts[key] > 1:
                                self.retried += len(group)
                            futures[self._submit(pool, group)] = key
                    except (OSError, RuntimeError, BrokenProcessPool):
                        # Worker processes could not be spawned at all.
                        if not futures:
                            return [s for g in pending.values() for s in g]
                        broken = True
                    not_done = set(futures)
                    while not_done and not broken:
                        done, not_done = wait(
                            not_done, return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            key = futures[future]
                            group = pending.get(key, [])
                            try:
                                result = future.result()
                            except BrokenProcessPool:
                                broken = True
                                continue
                            except Exception as exc:  # noqa: BLE001
                                result = [
                                    TrialResult(
                                        index=spec.index,
                                        seed=spec.seed,
                                        status="failed",
                                        error=f"{type(exc).__name__}: {exc}",
                                    )
                                    for spec in group
                                ]
                            self._emit_group(group, result, attempts[key])
                            pending.pop(key, None)
                    if broken:
                        # Let any still-healthy workers finish, then harvest
                        # every result that landed before the breakage so it
                        # is not re-executed after the restart.
                        pool.shutdown(wait=True)
                        for future, key in futures.items():
                            if key not in pending or not future.done():
                                continue
                            try:
                                result = future.result()
                            except Exception:  # noqa: BLE001
                                continue
                            self._emit_group(pending[key], result, attempts[key])
                            pending.pop(key, None)
            except BrokenProcessPool:
                broken = True
            if broken:
                self.restarts += 1
                for key, group in list(pending.items()):
                    if attempts[key] <= self.policy.max_retries:
                        continue  # gets another shared round
                    verdict = self._final_attempt(group)
                    if verdict is _CRASHED:
                        self.restarts += 1
                    if verdict is _CRASHED or verdict is None:
                        for spec in group:
                            self.emit(
                                TrialResult(
                                    index=spec.index,
                                    seed=spec.seed,
                                    status="crashed",
                                    error=(
                                        "worker process died; retries "
                                        f"exhausted after {attempts[key]} "
                                        "attempts"
                                    ),
                                    attempts=attempts[key],
                                ),
                                attempts[key],
                            )
                    else:
                        self._emit_group(group, verdict, attempts[key])
                    pending.pop(key)
        return []


def run_campaign(
    campaign: Campaign,
    policy: Optional[ExecPolicy] = None,
    journal: Optional[CampaignJournal] = None,
    reporter: Optional["ProgressReporter"] = None,
) -> CampaignResult:
    """Execute ``campaign`` under ``policy`` and return ordered results.

    With a journal, previously finished trials are served from disk
    (``cached=True`` records) and fresh ones are appended as they
    complete.  With a reporter, progress lines stream while running.
    """
    from .progress import ProgressReporter  # local: avoid import cycle

    policy = policy or ExecPolicy()
    specs = campaign.trials()
    fingerprint = journal.fingerprint if journal else campaign.fingerprint()

    records: Dict[int, TrialResult] = {}
    if journal is not None:
        for index, obj in journal.load_completed().items():
            records[index] = TrialResult(
                index=index,
                seed=obj["seed"],
                status="ok",
                value=obj["value"],
                elapsed_s=obj.get("elapsed_s", 0.0),
                attempts=obj.get("attempts", 1),
                cached=True,
            )
    cached = len(records)
    pending = [s for s in specs if s.index not in records]

    if reporter is None:
        reporter = ProgressReporter(enabled=False)
    reporter.start(campaign.name, total=len(specs), cached=cached)

    started = time.perf_counter()
    attempts_seen: Dict[int, int] = {}

    def emit(record: TrialResult, known_attempts: Optional[int] = None) -> None:
        if known_attempts is not None and record.attempts != known_attempts:
            record = dataclasses.replace(record, attempts=known_attempts)
        records[record.index] = record
        if journal is not None:
            journal.append(record)
        reporter.update(record)

    batch = policy.resolved_batch()
    if batch > 1:
        from ..memsys.batchplane import batch_supported

        # SIGALRM timeouts only fire on a main thread, so a timeout
        # budget forces per-trial dispatch; no numpy means no lanes to
        # rendezvous, so batching would only add thread overhead.
        if policy.timeout_s is not None or not batch_supported():
            batch = 1

    restarts = retried = 0
    leftover = pending
    if pending and policy.resolved_jobs() > 1 and len(pending) > 1:
        run = _ParallelRun(policy, emit, batch=batch)
        leftover = run.run(pending)
        restarts, retried = run.restarts, run.retried

    # Serial path: jobs == 1, a single pending trial, or pool unavailable.
    if batch > 1:
        for group in _chunk_specs(leftover, batch):
            for record in run_trial_batch(group, policy.timeout_s):
                emit(record)
    else:
        for spec in leftover:
            emit(_execute_spec(spec, policy.timeout_s))

    elapsed = time.perf_counter() - started
    ordered = tuple(records[i] for i in sorted(records))
    executed = [r for r in ordered if not r.cached]
    metrics = CampaignMetrics(
        total=len(specs),
        completed=len(executed),
        cached=cached,
        failed=sum(1 for r in ordered if not r.ok),
        retried=retried,
        pool_restarts=restarts,
        elapsed_s=elapsed,
    )
    reporter.finish(metrics)
    return CampaignResult(
        name=campaign.name,
        fingerprint=fingerprint,
        records=ordered,
        metrics=metrics,
    )
