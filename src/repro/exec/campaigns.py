"""Reusable paper campaigns: the trial functions behind the Monte-Carlo
tables.

Every table and figure in the reproduction is a campaign of independent
seeded trials; this module holds the picklable trial functions and the
campaign builders for the common ones, so the benchmark harness, the
tests, and ``python -m repro campaign`` all run the *same* code path.

Trial functions follow the engine contract ``fn(config, seed) -> result``
with a picklable config and a JSON-codable (or codec-equipped) result.
Seeding reproduces the pre-engine benchmark convention (trial ``i`` gets
``base_seed + i``) so results are byte-identical to the historical serial
loops.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .._util import mean, median, stddev
from ..core.evset import (
    EvsetConfig,
    build_candidate_set,
    bulk_construct_page_offset,
    bulk_construct_whole_sys,
    construct_sf_evset,
)
from ..envs import EnvLike, make_env
from .spec import Campaign, arithmetic_seeds, dataclass_codec

#: Default page offset used when a campaign needs an arbitrary one.
PAGE_OFFSET = 0x240


@dataclasses.dataclass
class ConstructionSample:
    """One eviction-set construction trial's outcome."""

    success: bool
    valid: bool
    elapsed_ms: float
    tests: int
    backtracks: int
    traversed: int


@dataclasses.dataclass(frozen=True)
class ConstructionTrialConfig:
    """Config of one SingleSet SF construction trial.

    ``filtered=True`` prepends the paper's L2-driven candidate filtering
    pass (Section 5.3) to the construction, as Table 4 does.
    """

    env: EnvLike = "cloud"
    algorithm: str = "bins"
    evset_cfg: EvsetConfig = dataclasses.field(default_factory=EvsetConfig)
    page_offset: int = PAGE_OFFSET
    filtered: bool = False


def construction_trial(
    cfg: ConstructionTrialConfig, seed: int
) -> ConstructionSample:
    """One SingleSet SF construction on a fresh machine.

    Byte-for-byte the trial body of the historical serial loops in
    ``benchmarks/_common.run_single_set_trials`` (unfiltered) and Table
    4's filtered variant, so engine-run campaigns reproduce their values.

    With ``REPRO_PREFIX_CACHE=1`` the deterministic prefix (machine
    build, calibration, candidate-pool allocation) is served from the
    thread's content-addressed :mod:`~repro.exec.prefix` store: a
    repeated ``(env, seed, page_offset)`` spec — fleet retries, resumed
    shards, benchmark repeat loops — restores the checkpointed state
    instead of re-simulating it.  Results are bit-identical either way
    (the restore is digest-verified).
    """
    from .prefix import lease_construction_prefix, prefix_enabled

    if prefix_enabled():
        machine, ctx, target, vas = lease_construction_prefix(
            cfg.env, seed, cfg.page_offset
        )[:4]
    else:
        machine, ctx = make_env(cfg.env, seed=seed)
        cand = build_candidate_set(ctx, cfg.page_offset)
        target = cand.vas.pop()
        vas = cand.vas
    if cfg.filtered:
        from ..core.evset.filtering import build_l2_eviction_set, filter_candidates

        start = machine.now
        try:
            l2e = build_l2_eviction_set(ctx, target, cfg.evset_cfg)
            filtered = filter_candidates(ctx, l2e, vas)
            outcome = construct_sf_evset(
                ctx, cfg.algorithm, target, filtered, cfg.evset_cfg
            )
            success = outcome.success
            valid = False
            if success:
                sets = {ctx.true_set_of(v) for v in outcome.evset.vas}
                valid = len(sets) == 1 and ctx.true_set_of(target) in sets
        except Exception:
            success = valid = False
        elapsed_ms = (machine.now - start) / (machine.cfg.clock_ghz * 1e6)
        return ConstructionSample(success, valid, elapsed_ms, 0, 0, 0)
    outcome = construct_sf_evset(
        ctx, cfg.algorithm, target, vas, cfg.evset_cfg
    )
    valid = False
    if outcome.success:
        sets = {ctx.true_set_of(v) for v in outcome.evset.vas}
        valid = len(sets) == 1 and ctx.true_set_of(target) in sets
    return ConstructionSample(
        success=outcome.success,
        valid=valid,
        elapsed_ms=outcome.elapsed_ms(machine.cfg.clock_ghz),
        tests=outcome.stats.tests,
        backtracks=outcome.stats.backtracks,
        traversed=outcome.stats.traversed_addresses,
    )


def construction_campaign(
    env: EnvLike = "cloud",
    algorithm: str = "bins",
    trials: int = 4,
    evset_cfg: Optional[EvsetConfig] = None,
    base_seed: int = 1000,
    page_offset: int = PAGE_OFFSET,
    filtered: bool = False,
    name: Optional[str] = None,
) -> Campaign:
    """Repeated SingleSet SF constructions, fresh machine per trial."""
    cfg = ConstructionTrialConfig(
        env=env,
        algorithm=algorithm,
        evset_cfg=evset_cfg if evset_cfg is not None else EvsetConfig(),
        page_offset=page_offset,
        filtered=filtered,
    )
    env_tag = env if isinstance(env, str) else env.noise
    return Campaign(
        name=name or f"construction-{env_tag}-{algorithm}",
        fn=construction_trial,
        configs=tuple(cfg for _ in range(trials)),
        seeds=arithmetic_seeds(base_seed, trials),
        codec=dataclass_codec(ConstructionSample),
    )


def summarize_construction_samples(
    samples: Sequence[ConstructionSample],
) -> Dict[str, float]:
    """success rate + avg/std/median time of construction samples."""
    times = [s.elapsed_ms for s in samples]
    return {
        "succ": sum(1 for s in samples if s.valid) / max(1, len(samples)),
        "avg_ms": mean(times),
        "std_ms": stddev(times),
        "med_ms": median(times),
    }


@dataclasses.dataclass(frozen=True)
class BulkTrialConfig:
    """Config of one bulk (PageOffset / WholeSys) construction run."""

    env: EnvLike = "cloud"
    algorithm: str = "bins"
    scenario: str = "page-offset"  # or "whole-sys"
    page_offset: int = PAGE_OFFSET
    offsets: Optional[Tuple[int, ...]] = None
    evset_cfg: EvsetConfig = dataclasses.field(
        default_factory=lambda: EvsetConfig(budget_ms=100.0)
    )


def bulk_trial(cfg: BulkTrialConfig, seed: int) -> Dict[str, float]:
    """One bulk construction run; returns its success rate and sim time."""
    machine, ctx = make_env(cfg.env, seed=seed)
    if cfg.scenario == "page-offset":
        result = bulk_construct_page_offset(
            ctx, cfg.algorithm, cfg.page_offset, cfg.evset_cfg
        )
    elif cfg.scenario == "whole-sys":
        result = bulk_construct_whole_sys(
            ctx,
            cfg.algorithm,
            cfg.evset_cfg,
            offsets=list(cfg.offsets) if cfg.offsets is not None else None,
        )
    else:
        raise ValueError(f"unknown bulk scenario {cfg.scenario!r}")
    return {
        "rate": result.success_rate(ctx),
        "seconds": result.elapsed_seconds(machine.cfg.clock_ghz),
    }


def bulk_campaign(
    runs: Sequence[Tuple[BulkTrialConfig, int]], name: str = "bulk"
) -> Campaign:
    """A campaign over heterogeneous (config, seed) bulk runs.

    Used by the Table 4 harness to fan its (env, algo) grid out as
    independent trials.
    """
    configs = tuple(cfg for cfg, _ in runs)
    seeds = tuple(seed for _, seed in runs)
    return Campaign(name=name, fn=bulk_trial, configs=configs, seeds=seeds)


def grid_campaign(
    fn,
    grid: Sequence[Tuple[object, int]],
    name: str = "grid",
    codec=None,
) -> Campaign:
    """A campaign over an explicit (config, seed) list for any trial fn."""
    from .spec import IDENTITY_CODEC

    return Campaign(
        name=name,
        fn=fn,
        configs=tuple(cfg for cfg, _ in grid),
        seeds=tuple(seed for _, seed in grid),
        codec=codec if codec is not None else IDENTITY_CODEC,
    )


#: Named campaign builders for ``python -m repro campaign --name ...``.
#: Each maps parsed CLI args to a Campaign.
def _cli_construction(args) -> Campaign:
    return construction_campaign(
        env=args.campaign_env,
        algorithm=args.algo,
        trials=args.trials,
        evset_cfg=EvsetConfig(budget_ms=args.budget_ms),
        base_seed=args.seed,
        page_offset=args.page_offset,
        filtered=args.filtered,
    )


def _cli_bulk_page_offset(args) -> Campaign:
    cfg = BulkTrialConfig(
        env=args.campaign_env,
        algorithm=args.algo,
        scenario="page-offset",
        page_offset=args.page_offset,
        evset_cfg=EvsetConfig(budget_ms=args.budget_ms),
    )
    runs = [(cfg, args.seed + i) for i in range(args.trials)]
    return bulk_campaign(runs, name=f"bulk-pageoffset-{args.campaign_env}-{args.algo}")


def _cli_noise_mc(args) -> Campaign:
    # Lazy: repro.fleet imports repro.exec, so the dependency must point
    # that way.  Serial `campaign --name noise-mc` is the parity oracle
    # for the fleet's sharded runs of the same campaign.
    from ..fleet.campaigns import _cli_noise_mc as build

    return build(args)


def _cli_defense_matrix(args) -> Campaign:
    # Lazy: repro.defenses.matrix pulls in the whole attack pipeline.
    from ..defenses.matrix import STAGES, defense_matrix_campaign

    defenses = getattr(args, "defenses", None)
    stages = getattr(args, "stages", None)
    return defense_matrix_campaign(
        env=args.campaign_env,
        defenses=tuple(defenses.split(",")) if defenses else None,
        trials_per_defense=args.trials,
        algorithm=args.algo,
        budget_ms=args.budget_ms,
        bulk_budget_ms=getattr(args, "bulk_budget_ms", 500.0),
        stages=tuple(stages.split(",")) if stages else STAGES,
        base_seed=args.seed,
    )


CLI_CAMPAIGNS = {
    "construction": _cli_construction,
    "bulk-pageoffset": _cli_bulk_page_offset,
    "noise-mc": _cli_noise_mc,
    "defense-matrix": _cli_defense_matrix,
}
