"""On-disk JSONL result journal: crash-safe resume and rerun cache hits.

One journal file per campaign fingerprint.  The first line is a header
record (campaign name, fingerprint, trial count, code version); each
subsequent line is one finished trial.  Appends are line-atomic enough
for our purposes: a campaign killed mid-write leaves at most one
truncated trailing line, which :meth:`CampaignJournal.load_completed`
silently drops.  Because the fingerprint covers configs, seeds, and code
version, a journal can never resume a campaign it does not match — a
changed input simply lands in a different file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from .spec import Campaign

#: Default journal directory (gitignored; see also the CLI's --journal-dir).
DEFAULT_JOURNAL_DIR = Path(".repro") / "journals"

#: Statuses a trial record may carry.  Only "ok" records are reused on
#: resume; failures re-run so a fixed environment can complete a campaign.
TRIAL_STATUSES = ("ok", "failed", "timeout", "crashed")


class CampaignJournal:
    """Append-only JSONL store of one campaign's trial records."""

    def __init__(
        self,
        directory: Union[str, Path],
        campaign: Campaign,
        version: Optional[str] = None,
    ) -> None:
        self.campaign = campaign
        self.fingerprint = campaign.fingerprint(version)
        self.directory = Path(directory)
        self.path = self.directory / (
            f"{_safe_name(campaign.name)}-{self.fingerprint[:16]}.jsonl"
        )
        self._header_written = self.path.exists()

    # -- writing ----------------------------------------------------------

    def _header(self) -> dict:
        return {
            "kind": "header",
            "name": self.campaign.name,
            "fingerprint": self.fingerprint,
            "n_trials": len(self.campaign),
        }

    def append(self, record: "TrialRecordLike") -> None:
        """Durably record one finished trial."""
        self.directory.mkdir(parents=True, exist_ok=True)
        lines = []
        if not self._header_written:
            lines.append(json.dumps(self._header(), sort_keys=True))
            self._header_written = True
        payload = {
            "kind": "trial",
            "index": record.index,
            "seed": record.seed,
            "status": record.status,
            "elapsed_s": record.elapsed_s,
            "attempts": record.attempts,
            "error": record.error,
            "value": (
                self.campaign.codec.encode(record.value)
                if record.status == "ok"
                else None
            ),
        }
        lines.append(json.dumps(payload, sort_keys=True))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- reading ----------------------------------------------------------

    def load_completed(self) -> Dict[int, dict]:
        """Raw journal records of successfully finished trials, by index.

        Tolerates a truncated trailing line (killed campaign) and ignores
        the whole file if its header does not match this campaign — that
        can only happen through manual tampering, since the fingerprint is
        part of the filename.
        """
        if not self.path.exists():
            return {}
        completed: Dict[int, dict] = {}
        seeds = self.campaign.seeds
        with open(self.path, "r", encoding="utf-8") as fh:
            raw = fh.read()
        for i, line in enumerate(raw.splitlines()):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                # A truncated line means the writer died mid-append; every
                # complete record before it is still good.
                continue
            if obj.get("kind") == "header":
                if obj.get("fingerprint") != self.fingerprint:
                    return {}
                continue
            if obj.get("kind") != "trial" or obj.get("status") != "ok":
                continue
            index = obj.get("index")
            if not isinstance(index, int) or not 0 <= index < len(seeds):
                continue
            if obj.get("seed") != seeds[index]:
                continue
            obj["value"] = self.campaign.codec.decode(obj["value"])
            completed[index] = obj
        return completed


class TrialRecordLike:
    """Structural interface journal.append expects (see executor.TrialResult)."""

    index: int
    seed: int
    status: str
    elapsed_s: float
    attempts: int
    error: Optional[str]
    value: object


def _safe_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name)
