"""Content-addressed trial-prefix store: restore instead of re-simulate.

Every construction trial starts with the same expensive, fully
deterministic prefix: build the machine, calibrate the attacker's
latency thresholds, allocate and translate the candidate page pool
(:func:`~repro.core.evset.build_candidate_set`), and pop the target.
The prefix is a pure function of ``(environment, seed, page offset)``
— so when the *same* trial spec runs again (fleet shard retries,
resumed campaigns re-executing a shard, benchmark repeat loops, the
memo-replay ``construct`` stage), re-simulating it is pure waste.

This store keys that prefix by a content address
(:func:`~repro.check.digest.obj_digest` of the environment spec, seed,
page offset and resolved RNG mode) and caches the *live* machine and
attacker context behind an exact
:class:`~repro.memsys.snapshot.MachineCheckpoint` plus the context-side
state the machine checkpoint deliberately does not own:

* the attacker RNG stream (``ctx.rng`` — construction consumes it),
* the unused page pool (``ctx._pool``) and the candidate VA list,
* the calibrated thresholds,
* the attacker address space's page table, bump pointer, and spawned
  RNG stream (so post-restore allocations replay the same frames,
  which keeps every VA->line memo coherent without dropping it).

A :func:`lease` restores all of that bit-for-bit (digest-verified) and
hands the machine/context out for one more construction.  Restoring is
O(touched rows); on the construction workload it replaces hundreds of
thousands of simulated accesses.  Because the restore is exact it is
legal under **both** RNG contracts — unlike the counter-mode-only
construction memo in :mod:`repro.memsys.vec`, with which it composes:
the leased context keeps its kernels' memo tables across leases, so
repeated constructions hit the memo-replay fast path.

Gating: off unless ``REPRO_PREFIX_CACHE=1`` (or a caller passes an
explicit store).  The store is thread-local — fleet shard workers each
get their own, so leased machines are never shared across threads.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Dict, List, Optional, Tuple

from ..core.evset import build_candidate_set
from ..envs import EnvLike, make_env
from ..memsys.snapshot import MachineCheckpoint, checkpoint, checkpoint_key, restore

__all__ = [
    "TrialPrefix",
    "TrialPrefixStore",
    "prefix_enabled",
    "prefix_key",
    "thread_store",
    "lease_construction_prefix",
]


def prefix_enabled() -> bool:
    """Whether trial-prefix reuse is switched on (``REPRO_PREFIX_CACHE=1``)."""
    return os.environ.get("REPRO_PREFIX_CACHE", "0") == "1"


def _env_fingerprint(env: EnvLike) -> object:
    """A digest-stable description of an environment argument."""
    if dataclasses.is_dataclass(env) and not isinstance(env, type):
        return {"spec": dataclasses.asdict(env)}
    return {"name": str(env)}


def prefix_key(env: EnvLike, seed: int, page_offset: int) -> str:
    """Content address of one construction trial's prefix.

    Includes the resolved RNG mode: ``REPRO_RNG`` changes the machine
    that ``make_env`` builds, so the same ``(env, seed)`` under a
    different contract is a different prefix.
    """
    from ..check.digest import obj_digest
    from ..rng import resolve_rng_mode

    mode = getattr(env, "rng_mode", None) or resolve_rng_mode()
    return obj_digest(
        {
            "kind": "construction-prefix",
            "env": _env_fingerprint(env),
            "seed": seed,
            "page_offset": page_offset,
            "rng_mode": mode,
        }
    )


class TrialPrefix:
    """One cached prefix: a live environment pinned at its checkpoint.

    The machine and context objects stay alive inside the store;
    :meth:`lease` rewinds them to the post-candidate-pool instant and
    hands them out.  Exactly one lease may be outstanding at a time
    (the store is thread-local, and a trial runs to completion before
    the next lease on the same thread).
    """

    __slots__ = (
        "key", "machine", "ctx", "cp", "target", "vas",
        "rng_state", "pool", "thresholds", "aspace_state", "leases",
    )

    def __init__(self, key: str, env: EnvLike, seed: int, page_offset: int):
        self.key = key
        machine, ctx = make_env(env, seed=seed)
        cand = build_candidate_set(ctx, page_offset)
        self.machine = machine
        self.ctx = ctx
        self.target = cand.vas.pop()
        self.vas = tuple(cand.vas)
        self.rng_state = ctx.rng.getstate()
        self.pool = tuple(ctx._pool)
        self.thresholds = (ctx.threshold_private, ctx.threshold_llc)
        aspace = ctx.aspace
        self.aspace_state = (
            aspace._rng.getstate(),
            dict(aspace._page_table),
            aspace._next_vpn,
        )
        # Taken last, after every prefix side effect has landed.
        self.cp = checkpoint(machine, label="construction-prefix")
        self.leases = 0

    def checkpoint_key(self) -> str:
        """Content address of the captured machine state."""
        return checkpoint_key(self.cp)

    def lease(self, verify: bool = True) -> Tuple[object, object, int, List[int]]:
        """Rewind to the checkpoint; returns (machine, ctx, target, vas).

        The first lease after construction is free (the environment is
        already *at* the checkpoint).  The returned candidate list is a
        fresh copy — construction algorithms consume it.
        """
        if self.leases:
            restore(self.machine, self.cp, verify=verify)
            ctx = self.ctx
            ctx.rng.setstate(self.rng_state)
            ctx._pool[:] = self.pool
            ctx.threshold_private, ctx.threshold_llc = self.thresholds
            aspace = ctx.aspace
            rng_state, page_table, next_vpn = self.aspace_state
            aspace._rng.setstate(rng_state)
            aspace._page_table.clear()
            aspace._page_table.update(page_table)
            aspace._next_vpn = next_vpn
        self.leases += 1
        return self.machine, self.ctx, self.target, list(self.vas)


class TrialPrefixStore:
    """A small LRU of :class:`TrialPrefix` entries (live machines).

    Entries pin a whole simulated machine each, so the cap stays small;
    the workloads that benefit (retry/resume/repeat) cycle over very few
    distinct keys.
    """

    def __init__(self, cap: int = 4) -> None:
        self.cap = cap
        self._entries: Dict[str, TrialPrefix] = {}
        self.hits = 0
        self.misses = 0

    def lease(
        self, env: EnvLike, seed: int, page_offset: int, verify: bool = True
    ) -> Tuple[object, object, int, List[int], bool]:
        """(machine, ctx, target, candidate vas, was-it-a-hit)."""
        key = prefix_key(env, seed, page_offset)
        entry = self._entries.pop(key, None)
        hit = entry is not None
        if entry is None:
            self.misses += 1
            entry = TrialPrefix(key, env, seed, page_offset)
            if len(self._entries) >= self.cap:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
        else:
            self.hits += 1
        self._entries[key] = entry  # re-insert = move to MRU
        machine, ctx, target, vas = entry.lease(verify=verify)
        return machine, ctx, target, vas, hit

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._entries.clear()


_LOCAL = threading.local()


def thread_store() -> TrialPrefixStore:
    """This thread's prefix store (created on first use).

    Thread-local by design: a leased machine is a live, mutable
    simulation — two fleet shard workers must never share one.
    """
    store = getattr(_LOCAL, "store", None)
    if store is None:
        store = _LOCAL.store = TrialPrefixStore()
    return store


def lease_construction_prefix(
    env: EnvLike, seed: int, page_offset: int
) -> Tuple[object, object, int, List[int], bool]:
    """Module-level convenience over :func:`thread_store`."""
    return thread_store().lease(env, seed, page_offset)
