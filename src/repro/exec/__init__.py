"""repro.exec — the deterministic parallel campaign engine.

Every result in this reproduction is a Monte-Carlo campaign of
independent seeded trials.  This package turns such a campaign into a
first-class object and executes it over all available cores while
staying bit-identical to serial execution:

* :mod:`repro.exec.spec` — :class:`TrialSpec` / :class:`Campaign`:
  picklable ``(fn, config, seed)`` units with deterministic per-campaign
  seed streams and a content fingerprint.
* :mod:`repro.exec.executor` — :func:`run_campaign` on a process pool
  with per-trial timeouts, bounded crash retry, and a serial fallback.
* :mod:`repro.exec.journal` — a JSONL result journal keyed by the
  campaign fingerprint; reruns resume and repeat invocations are cache
  hits.
* :mod:`repro.exec.progress` — live trials/sec, ETA, and failure-count
  reporting (metrics surface in :mod:`repro.analysis`).
* :mod:`repro.exec.campaigns` — the paper's trial functions (eviction-set
  construction, bulk scenarios) packaged as reusable campaigns.

Minimal use::

    from repro.exec import Campaign, ExecPolicy, run_campaign

    campaign = Campaign.build("demo", my_trial_fn, my_config, trials=100)
    result = run_campaign(campaign, ExecPolicy(jobs=8))
    values = result.values()         # identical for any worker count
"""

from .campaigns import (
    BulkTrialConfig,
    ConstructionSample,
    ConstructionTrialConfig,
    bulk_campaign,
    bulk_trial,
    construction_campaign,
    construction_trial,
    grid_campaign,
    summarize_construction_samples,
)
from .executor import (
    CampaignResult,
    ExecPolicy,
    TrialResult,
    TrialTimeout,
    default_jobs,
    run_campaign,
    run_trial_batch,
)
from .journal import DEFAULT_JOURNAL_DIR, CampaignJournal
from .prefix import (
    TrialPrefixStore,
    lease_construction_prefix,
    prefix_enabled,
    prefix_key,
    thread_store,
)
from .progress import ProgressReporter
from .spec import (
    Campaign,
    ResultCodec,
    TrialSpec,
    arithmetic_seeds,
    dataclass_codec,
    seed_stream,
)

__all__ = [
    "BulkTrialConfig",
    "Campaign",
    "CampaignJournal",
    "CampaignResult",
    "ConstructionSample",
    "ConstructionTrialConfig",
    "DEFAULT_JOURNAL_DIR",
    "ExecPolicy",
    "ProgressReporter",
    "ResultCodec",
    "TrialPrefixStore",
    "TrialResult",
    "TrialSpec",
    "TrialTimeout",
    "arithmetic_seeds",
    "bulk_campaign",
    "bulk_trial",
    "construction_campaign",
    "construction_trial",
    "dataclass_codec",
    "default_jobs",
    "grid_campaign",
    "lease_construction_prefix",
    "prefix_enabled",
    "prefix_key",
    "run_campaign",
    "run_trial_batch",
    "seed_stream",
    "summarize_construction_samples",
    "thread_store",
]
