"""Defenses against LLC/SF Prime+Probe (the paper's Section 8 landscape).

The paper classifies mitigations into partition-based designs (complex,
higher overhead, strong guarantees) and randomization-based designs
(cheap, weaker guarantees).  This subpackage implements one family of
each, plus a software-only scheme, behind a single pluggable interface
(every defense cache duck-types :class:`repro.memsys.cache.
SetAssociativeCache`, so the hierarchy and all execution tiers run
unmodified):

* **way partitioning** (Intel CAT / DAWG style, partition-based):
  cross-domain contention disappears; Prime+Probe goes blind.
* **CEASER** keyed index with epoch rekeying and **skewed
  associativity** (randomization-based): congruence in the attacker's
  address view stops implying congruence in the cache, and rekeying
  bounds the lifetime of any discovered eviction set.
* **copy-on-access soft isolation** (Zhou et al., software-only):
  per-domain line copies inside cacheability quotas.

:mod:`repro.defenses.registry` names them all (JSON-able specs +
:func:`~repro.defenses.registry.apply_defense`), and
:mod:`repro.defenses.matrix` runs the full attack pipeline against each
and reports which survive (``python -m repro campaign defense-matrix``).
"""

from .partition import WayPartitionedCache, apply_way_partitioning
from .randomized import CeaserCache, SkewedCache
from .registry import DEFENSE_NAMES, apply_defense, default_defense_spec
from .software import SoftCopyCache, apply_soft_copy_partitioning

__all__ = [
    "WayPartitionedCache",
    "apply_way_partitioning",
    "CeaserCache",
    "SkewedCache",
    "SoftCopyCache",
    "apply_soft_copy_partitioning",
    "DEFENSE_NAMES",
    "apply_defense",
    "default_defense_spec",
]
