"""Defenses against LLC/SF Prime+Probe (the paper's Section 8 landscape).

The paper classifies mitigations into partition-based designs (complex,
higher overhead, strong guarantees) and randomization-based designs
(cheap, weaker guarantees).  This subpackage implements a representative
partition-based defense — per-tenant **way partitioning** of the shared
LLC and Snoop Filter (Intel CAT / DAWG style) — so its effect on every
stage of the attack can be measured inside the simulator:

* eviction sets still build (within the attacker's own ways), but
* the victim's insertions can no longer evict the attacker's lines, so
  Prime+Probe goes blind (see examples/defense_evaluation.py).
"""

from .partition import WayPartitionedCache, apply_way_partitioning

__all__ = ["WayPartitionedCache", "apply_way_partitioning"]
