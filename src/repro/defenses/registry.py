"""The pluggable defense registry: named, JSON-able specs -> machines.

Every defense the matrix evaluates is described by a *spec* — a plain
JSON-able dict with a ``"kind"`` drawn from :data:`DEFENSE_NAMES` plus
kind-specific parameters — so the fuzz trace grammar, the campaign
samples, and the fleet shards can all carry defenses by value:

* ``{"kind": "none"}`` — the undefended baseline;
* ``{"kind": "way-partition", "core_domains": [[core, dom], ...],
  "sf": {dom: ways}, "llc": {dom: ways}}`` — hardware way partitioning
  (:func:`~repro.defenses.partition.apply_way_partitioning`);
* ``{"kind": "ceaser", "seed": s, "epoch_accesses": n}`` — keyed
  epoch-rekeyed index (:class:`~repro.defenses.randomized.CeaserCache`);
* ``{"kind": "skew", "seed": s, "n_skews": k, "epoch_accesses": n}`` —
  skewed associativity (:class:`~repro.defenses.randomized.SkewedCache`);
* ``{"kind": "soft-copy", "core_domains": ..., "sf": {dom: quota},
  "llc": {dom: quota}}`` — copy-on-access soft isolation
  (:func:`~repro.defenses.software.apply_soft_copy_partitioning`).

``core_domains`` is a list of pairs (not a dict) so the spec survives a
JSON round-trip with integer core ids intact.

:func:`apply_defense` swaps a freshly built machine's shared caches per
the spec (before any traffic), and rebinds the counter RNG so keyed
random-victim draws reach the new inner planes in counter mode.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..memsys.machine import Machine
from .partition import OTHER_DOMAIN, apply_way_partitioning
from .randomized import CeaserCache, SkewedCache
from .software import apply_soft_copy_partitioning

#: Every defense the matrix sweeps, in report order.
DEFENSE_NAMES: Tuple[str, ...] = (
    "none", "way-partition", "ceaser", "skew", "soft-copy",
)

#: Inserts per automatic rekey epoch for the randomized defaults.  Large
#: enough that a single probe round survives an epoch, small enough that
#: eviction-set construction (thousands of inserts) spans several.
DEFAULT_EPOCH_ACCESSES = 4096


def _default_split(ways: int) -> Dict[str, int]:
    """Attacker/victim/other way budgets summing to ``ways`` (each >= 1)."""
    if ways < 3:
        raise ConfigurationError(
            f"need >= 3 ways to carve att/vic/{OTHER_DOMAIN} from {ways}"
        )
    att = max(1, ways // 2)
    vic = max(1, (ways - att) // 2)
    return {"att": att, "vic": vic, OTHER_DOMAIN: ways - att - vic}


def default_defense_spec(cfg, kind: str, seed: int = 0) -> Dict[str, Any]:
    """The matrix's canonical spec for ``kind`` on a machine config.

    Domain assignment puts the first half of the cores in ``att`` and the
    rest in ``vic`` (matching the campaign's attacker-on-low-cores,
    victim-on-high-cores convention); way budgets split each shared
    cache's associativity att/vic/other.
    """
    if kind not in DEFENSE_NAMES:
        raise ConfigurationError(
            f"unknown defense {kind!r} (have {', '.join(DEFENSE_NAMES)})"
        )
    if kind == "none":
        return {"kind": "none"}
    if kind in ("way-partition", "soft-copy"):
        half = max(1, cfg.cores // 2)
        return {
            "kind": kind,
            "core_domains": [
                [c, "att" if c < half else "vic"] for c in range(cfg.cores)
            ],
            "sf": _default_split(cfg.sf.ways),
            "llc": _default_split(cfg.llc.ways),
        }
    spec: Dict[str, Any] = {
        "kind": kind,
        "seed": seed,
        "epoch_accesses": DEFAULT_EPOCH_ACCESSES,
    }
    if kind == "skew":
        spec["n_skews"] = 2
    return spec


def apply_defense(machine: Machine, spec: Optional[Dict[str, Any]]) -> None:
    """Install the defense described by ``spec`` on a fresh machine.

    Must run before any shared-cache traffic (the swapped caches start
    empty); raises :class:`ConfigurationError` otherwise.  A ``None``
    spec or ``{"kind": "none"}`` leaves the machine undefended.
    """
    if spec is None:
        return
    kind = spec["kind"]
    if kind == "none":
        return
    hier = machine.hierarchy
    if kind == "way-partition":
        apply_way_partitioning(
            machine,
            core_domains=dict(spec["core_domains"]),
            sf_partitions=dict(spec["sf"]),
            llc_partitions=dict(spec["llc"]),
        )
    elif kind == "soft-copy":
        apply_soft_copy_partitioning(
            machine,
            core_domains=dict(spec["core_domains"]),
            sf_quotas=dict(spec["sf"]),
            llc_quotas=dict(spec["llc"]),
        )
    elif kind in ("ceaser", "skew"):
        if hier.sf.touched_sets or hier.llc.touched_sets:
            raise ConfigurationError(
                "apply the defense before any shared-cache traffic"
            )
        cfg = machine.cfg
        seed = spec.get("seed", 0)
        epoch_accesses = spec.get("epoch_accesses", 0)
        kwargs: Dict[str, Any] = {"epoch_accesses": epoch_accesses}
        cls = CeaserCache
        if kind == "skew":
            cls = SkewedCache
            kwargs["n_skews"] = spec.get("n_skews", 2)
        rng = hier._rng
        hier.sf = cls(
            "SF", cfg.llc.total_sets, cfg.sf.ways, cfg.sf_policy, rng,
            seed=seed, **kwargs,
        )
        hier.llc = cls(
            "LLC", cfg.llc.total_sets, cfg.llc.ways, cfg.llc_policy, rng,
            seed=seed, **kwargs,
        )
    else:
        raise ConfigurationError(
            f"unknown defense {kind!r} (have {', '.join(DEFENSE_NAMES)})"
        )
    # Counter mode: the swap replaced caches whose keyed-victim binding
    # happened at Machine construction; rebind so draws stay event-keyed.
    if hier.crng is not None:
        hier.bind_counter_rng(hier.crng)
