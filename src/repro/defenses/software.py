"""Software-level soft isolation: copy-on-access cacheability management.

Zhou, Reiter & Zhang ("A Software Approach to Defeating Side Channels in
Last-Level Caches", CCS'16) defeat LLC channels without hardware support
by (a) giving each security domain its own *copy* of a shared line on
first access — so a victim access never touches, and never evicts, a
line the attacker can observe — and (b) capping how many cacheable lines
each domain may keep per set (cacheability management), which bounds the
eviction pressure any domain can exert.

:class:`SoftCopyCache` models both on top of the
:class:`~repro.defenses.partition.WayPartitionedCache` machinery:

* each domain's quota is its partition (the cacheability budget: a
  domain's insertions can only ever evict inside its own quota);
* **insert does not migrate** — where the hardware partition *moves* a
  line between domains on a cross-domain insert, the soft scheme leaves
  the other domain's copy resident and installs a fresh copy in the
  inserting domain's quota (copy-on-access), so one tag may legitimately
  be resident in several parts at once (``allows_cross_part_copies``);
* **remove invalidates every copy** — back-invalidations and flushes are
  coherence actions and must not leave stale per-domain copies behind.

Honest modeling caveats: ``lookup`` has no owner annotation in the duck
interface, so a hit refreshes recency in the *first* part holding a copy
(parts iterate in quota-declaration order); and because copies consume
quota ways, total residency across parts can exceed the physical
associativity of the cache being modeled — the applier therefore checks
that the quota sum fits the physical way count.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigurationError
from ..memsys.hierarchy import NOISE_OWNER, SHARED_OWNER
from ..memsys.machine import Machine
from .partition import OTHER_DOMAIN, WayPartitionedCache


class SoftCopyCache(WayPartitionedCache):
    """Copy-on-access cache: per-domain copies inside per-domain quotas."""

    kind = "soft-copy"
    allows_cross_part_copies = True

    def insert(
        self, set_idx: int, tag: int, owner: int = 0, update_owner: bool = True
    ):
        """Install/refresh the inserting domain's *own* copy of the tag.

        Copies held by other domains stay resident (copy-on-access) —
        the single behavioral difference from the hardware partition,
        whose insert migrates the line into the inserting domain.
        """
        target = self._parts[self._domain(owner)]
        return target.insert(set_idx, tag, owner, update_owner=update_owner)

    def remove(self, set_idx: int, tag: int) -> bool:
        """Invalidate every domain's copy (coherence action)."""
        removed = False
        for part in self._parts.values():
            removed = part.remove(set_idx, tag) or removed
        return removed


def apply_soft_copy_partitioning(
    machine: Machine,
    core_domains: Dict[int, str],
    sf_quotas: Dict[str, int],
    llc_quotas: Optional[Dict[str, int]] = None,
) -> None:
    """Replace a machine's SF and LLC with copy-on-access versions.

    Must be called before any shared-cache traffic.  Unlike the hardware
    partition (which only splits what exists), the per-domain quotas are
    *cacheability budgets* carved out of the physical associativity, so
    their sum must not exceed the configured way count.
    """
    if llc_quotas is None:
        llc_quotas = dict(sf_quotas)
    hier = machine.hierarchy
    if hier.sf.touched_sets or hier.llc.touched_sets:
        raise ConfigurationError(
            "apply soft-copy partitioning before any shared-cache traffic"
        )
    cfg = machine.cfg
    for label, quotas, physical in (
        ("sf", sf_quotas, cfg.sf.ways),
        ("llc", llc_quotas, cfg.llc.ways),
    ):
        if sum(quotas.values()) > physical:
            raise ConfigurationError(
                f"{label} cacheability quotas sum to {sum(quotas.values())} "
                f"> {physical} physical ways"
            )

    def domain_of_owner(owner: int) -> str:
        if owner in (NOISE_OWNER, SHARED_OWNER):
            return OTHER_DOMAIN
        return core_domains.get(owner, OTHER_DOMAIN)

    rng = hier._rng
    hier.sf = SoftCopyCache(
        "SF", cfg.llc.total_sets, cfg.sf_policy, rng, sf_quotas,
        domain_of_owner,
    )
    hier.llc = SoftCopyCache(
        "LLC", cfg.llc.total_sets, cfg.llc_policy, rng, llc_quotas,
        domain_of_owner,
    )
