"""The defense-evaluation matrix: every attack stage against every defense.

The paper's §7 argues mitigations qualitatively; this campaign makes the
repro a defense *benchmark*.  One trial pits the full attack pipeline
against one defended machine and reports, per stage:

* **construct** — bulk SingleSet construction at the victim's page
  offset: how many eviction sets come out valid, and whether the
  victim's set is among the covered ones.  Randomized indexes break the
  page-offset → set contract the algorithms rely on, so this is where
  CEASER-style defenses bite first.
* **monitor** — the paper's scanner stage: train the PSD-feature SVM on
  ground-truth-labeled traces, then score it on a held-out batch.
  Reported as held-out accuracy (1.0 = the paper's near-perfect
  separation; 0.5 ≈ coin flip).
* **recover** — the end-to-end ECDSA attack
  (:func:`repro.core.pipeline.run_end_to_end`): nonce-bit recovery and
  bit-error rates under the defense.

Stages degrade honestly rather than crash: when a defense defeats an
earlier stage (no valid eviction set covers the target), later stages
score zero and the sample records why in ``error``.  Trials follow the
engine contract ``fn(config, seed) -> dataclass`` so the campaign runs
identically through ``python -m repro campaign defense-matrix``, the
parallel engine, and the sharded :mod:`repro.fleet` service.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

from .._util import mean
from ..config import MACHINE_PRESETS, NOISE_PRESETS, exposure_matched
from ..core.context import AttackerContext
from ..core.evset import EvsetConfig, bulk_construct_page_offset
from ..core.pipeline import AttackConfig, run_end_to_end
from ..core.scanner import (
    ScannerConfig,
    TargetSetClassifier,
    collect_labeled_traces,
)
from ..errors import ReproError
from ..rng import resolve_rng_mode
from .registry import DEFENSE_NAMES, apply_defense, default_defense_spec

#: Stage names in pipeline order.
STAGES = ("construct", "monitor", "recover")


@dataclasses.dataclass(frozen=True)
class DefenseTrialConfig:
    """One defended attack trial's parameters.

    ``env`` is an :data:`~repro.envs.EnvLike` (benchmark name or
    :class:`~repro.envs.EnvSpec`); the defense is applied to the fresh
    machine *before* attacker calibration, exactly as a deployed
    mitigation would precede the attacker's arrival.  ``stages`` is a
    prefix-closed subset of :data:`STAGES` (monitor needs construct's
    eviction sets; recover needs monitor's classifier).
    """

    env: object = "cloud"
    defense: str = "none"
    defense_seed: int = 0
    algorithm: str = "bins"
    budget_ms: float = 100.0
    #: Overall simulated budget for the bulk construction stage.  An
    #: effective defense makes every per-set construction exhaust its
    #: ``budget_ms``; the overall deadline keeps such trials bounded
    #: instead of 30x more expensive than undefended ones.
    bulk_budget_ms: float = 500.0
    stages: Tuple[str, ...] = STAGES
    n_traces: int = 2
    scan_timeout_s: float = 1.0
    #: Cap on eviction sets fed to the scanner's labeled collection.
    monitor_sets: int = 6


@dataclasses.dataclass
class DefenseTrialSample:
    """One (defense, seed) cell of the matrix."""

    defense: str
    n_evsets: int = 0
    valid_evsets: int = 0
    construct_rate: float = 0.0
    construct_timed_out: bool = False
    target_covered: bool = False
    monitor_accuracy: float = 0.0
    monitor_fnr: float = 0.0
    monitor_fpr: float = 0.0
    target_identified: bool = False
    recovered_fraction: float = 0.0
    bit_error_rate: float = 0.0
    error: str = ""


def defended_env(
    env, seed: int, defense: str, defense_seed: int = 0
):
    """Machine + calibrated context with ``defense`` applied pre-attack.

    Mirrors :func:`repro.envs.make_env` (same presets, same seeding
    conventions) but inserts :func:`~repro.defenses.apply_defense`
    between machine construction and attacker calibration —
    :func:`make_env` calibrates before returning, which would trip the
    defenses' pristine-machine guard.
    """
    from ..envs import ENVIRONMENTS, EnvSpec
    from ..memsys.machine import Machine

    if isinstance(env, EnvSpec):
        cfg = MACHINE_PRESETS[env.machine]()
        noise = NOISE_PRESETS[env.noise]
        if env.exposure_matched:
            noise = exposure_matched(noise, cfg)
        ctx_seed = seed + 1
        rng_mode = env.rng_mode
    else:
        cfg_factory, noise_factory, matched = ENVIRONMENTS[env]
        cfg = cfg_factory()
        noise = noise_factory()
        if matched:
            noise = exposure_matched(noise, cfg)
        ctx_seed = seed * 7 + 1
        rng_mode = None
    mode = rng_mode if rng_mode else os.environ.get("REPRO_RNG")
    if mode:
        mode = resolve_rng_mode(mode)
        if cfg.rng_mode != mode:
            cfg = dataclasses.replace(cfg, rng_mode=mode)
    machine = Machine(cfg, noise=noise, seed=seed)
    apply_defense(machine, default_defense_spec(cfg, defense, seed=defense_seed))
    ctx = AttackerContext(machine, seed=ctx_seed)
    ctx.calibrate()
    return machine, ctx


def defense_trial(cfg: DefenseTrialConfig, seed: int) -> DefenseTrialSample:
    """Run the staged attack pipeline against one defended machine."""
    from ..victim import EcdsaVictim, VictimConfig

    sample = DefenseTrialSample(defense=cfg.defense)
    machine, ctx = defended_env(cfg.env, seed, cfg.defense, cfg.defense_seed)
    victim_core = min(2, machine.cfg.cores - 1)
    victim = EcdsaVictim(
        machine, core=victim_core, cfg=VictimConfig(), seed=seed + 100
    )
    if "construct" not in cfg.stages:
        return sample

    # -- Stage 1: bulk construction at the victim's page offset -------------
    deadline = machine.now + int(
        cfg.bulk_budget_ms * machine.cfg.clock_ghz * 1e6
    )
    try:
        bulk = bulk_construct_page_offset(
            ctx,
            cfg.algorithm,
            victim.layout.target_page_offset,
            EvsetConfig(budget_ms=cfg.budget_ms),
            deadline=deadline,
        )
    except ReproError as exc:
        sample.error = f"construct: {exc}"
        return sample
    sample.construct_timed_out = bulk.timed_out
    sample.n_evsets = len(bulk.evsets)
    valid, _covered = bulk.coverage(ctx)
    sample.valid_evsets = valid
    sample.construct_rate = valid / max(1, len(bulk.evsets))
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    target_evsets = [
        e for e in bulk.evsets if ctx.true_set_of(e.target_va) == target_set
    ]
    sample.target_covered = bool(target_evsets)
    if "monitor" not in cfg.stages:
        return sample
    if not target_evsets:
        sample.error = "monitor: no eviction set covers the target set"
        return sample

    # -- Stage 2: scanner accuracy on held-out labeled traces ---------------
    scfg = ScannerConfig()
    scan_evsets = (target_evsets[:1] + [
        e for e in bulk.evsets if e not in target_evsets
    ])[: max(2, cfg.monitor_sets)]
    victim.run_continuously(machine.now + 1000)
    # Balance the classes: one target evset among several decoys starves
    # the positive class unless the target set is oversampled.
    reps = max(2, len(scan_evsets) - 1)
    try:
        traces, labels = collect_labeled_traces(
            ctx, scan_evsets, target_set, scfg, per_set=2,
            positive_reps=2 * reps,
        )
        classifier = TargetSetClassifier(machine.clock_hz, scfg).fit(
            traces, labels
        )
        held_out = collect_labeled_traces(
            ctx, scan_evsets, target_set, scfg, per_set=1,
            positive_reps=reps,
        )
        report = classifier.validate(*held_out)
    except ReproError as exc:
        sample.error = f"monitor: {exc}"
        return sample
    sample.monitor_accuracy = report.accuracy
    sample.monitor_fnr = report.false_negative_rate
    sample.monitor_fpr = report.false_positive_rate
    if "recover" not in cfg.stages:
        return sample

    # -- Stage 3: end-to-end key recovery -----------------------------------
    try:
        attack = run_end_to_end(
            ctx,
            victim,
            classifier,
            AttackConfig(
                algorithm=cfg.algorithm,
                evset=EvsetConfig(budget_ms=cfg.budget_ms),
                n_traces=cfg.n_traces,
                scan_timeout_s=cfg.scan_timeout_s,
            ),
            evsets=bulk.evsets,
        )
    except ReproError as exc:
        sample.error = f"recover: {exc}"
        return sample
    sample.target_identified = attack.target_identified
    sample.recovered_fraction = attack.mean_recovered_fraction
    sample.bit_error_rate = attack.mean_bit_error_rate
    return sample


def defense_matrix_campaign(
    env="cloud",
    defenses: Optional[Sequence[str]] = None,
    trials_per_defense: int = 2,
    algorithm: str = "bins",
    budget_ms: float = 100.0,
    bulk_budget_ms: float = 500.0,
    stages: Sequence[str] = STAGES,
    base_seed: int = 1000,
    n_traces: int = 2,
    name: Optional[str] = None,
):
    """The full matrix: ``defenses`` × ``trials_per_defense`` seeds.

    Seeding gives trial ``i`` of every defense the same machine seed
    (``base_seed + i``), so per-defense columns are paired comparisons on
    identical undefended machines.
    """
    from ..exec.campaigns import grid_campaign
    from ..exec.spec import dataclass_codec

    if defenses is None:
        defenses = DEFENSE_NAMES
    for defense in defenses:
        if defense not in DEFENSE_NAMES:
            raise ValueError(f"unknown defense {defense!r}")
    grid = []
    for defense in defenses:
        cfg = DefenseTrialConfig(
            env=env,
            defense=defense,
            algorithm=algorithm,
            budget_ms=budget_ms,
            bulk_budget_ms=bulk_budget_ms,
            stages=tuple(stages),
            n_traces=n_traces,
        )
        for i in range(trials_per_defense):
            grid.append((cfg, base_seed + i))
    env_tag = env if isinstance(env, str) else env.machine
    return grid_campaign(
        defense_trial,
        grid,
        name=name or f"defense-matrix-{env_tag}",
        codec=dataclass_codec(DefenseTrialSample),
    )


def summarize_defense_samples(
    samples: Sequence[DefenseTrialSample],
) -> List[Dict[str, object]]:
    """Per-defense aggregate rows (insertion order of first appearance)."""
    by_defense: Dict[str, List[DefenseTrialSample]] = {}
    for sample in samples:
        by_defense.setdefault(sample.defense, []).append(sample)
    rows: List[Dict[str, object]] = []
    for defense, group in by_defense.items():
        n = max(1, len(group))
        rows.append({
            "defense": defense,
            "trials": len(group),
            "construct_rate": mean([s.construct_rate for s in group]),
            "target_covered": sum(s.target_covered for s in group) / n,
            "monitor_accuracy": mean([s.monitor_accuracy for s in group]),
            "identified": sum(s.target_identified for s in group) / n,
            "recovered": mean([s.recovered_fraction for s in group]),
            "ber": mean([s.bit_error_rate for s in group]),
            "errors": sum(1 for s in group if s.error),
        })
    return rows
