"""Randomized-index defenses for the shared SF/LLC (CEASER / skew style).

Two hardware defense families from the paper's mitigation survey replace
the fixed address-to-set mapping of the shared caches with keyed index
functions (:mod:`repro.memsys.randomize`):

* :class:`CeaserCache` — one keyed, epoch-rekeyed index function over
  the whole cache (CEASER, Qureshi MICRO'18).  Congruence in the
  attacker's address view no longer implies congruence in the cache, so
  eviction sets built from page-offset/slice reasoning stop working; a
  periodic :meth:`~CeaserCache.rekey` bounds how long any discovered
  congruence stays valid.
* :class:`SkewedCache` — skewed associativity (CEASER-S, Scatter-Cache):
  the ways are split into skews, each with its *own* keyed index
  function, and a fill picks a skew (free way first, else a keyed
  choice), so two lines that collide in one skew are almost never
  congruent in another.

Both present the duck interface of
:class:`~repro.memsys.cache.SetAssociativeCache` — exactly like
:class:`~repro.defenses.partition.WayPartitionedCache` — so the
hierarchy and all execution tiers run unmodified: the optimized fast
paths and fused kernels disengage on the foreign type and take the
generic route, bit-identically on every tier.

Placement is keyed by the **address alone**: the hierarchy tags shared
caches with the full line address, so the internal index is
``index_of(tag % n_sets, tag)`` and the ``set_idx`` the caller passes is
ignored for location (it is derived from the same address and carries no
extra information).  That mirrors real randomized caches — the index is
a keyed function of the address — and makes every call site locate a
line correctly, including the SF-victim reinstall path that passes the
*inserting* line's set index rather than the victim's.

Modeling notes (honest limitations):

* ``rekey`` *invalidates* remapped lines instead of relocating them
  (rekey-by-flush); real CEASER relocates in the background.  Either
  way the attacker's congruence knowledge dies with the epoch.
* ``peek_victim`` returns ``None``: with a keyed index there is no
  externally predictable eviction candidate, which is precisely what
  degrades Prime+Scope-style monitoring.
* The per-set noise-reconciliation clocks stay keyed by the *external*
  set index (they meter background pressure per observable set, not per
  physical row), so the lazy-noise machinery and the invariant
  checker's monotonicity scan work unchanged.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..memsys.cache import SetAssociativeCache
from ..memsys.randomize import (
    KeyedSetIndex,
    derive_master_key,
    epoch_key,
    keyed_choice,
)


class _RandomizedSharedCache:
    """Shared plumbing of the keyed-index defense caches.

    Subclasses own the placement logic; this base keeps the external
    residency map ``_ext`` (tag -> external set index as last inserted,
    serving the observable read-only views), the epoch/access
    bookkeeping for auto-rekey, and the ``parts()`` /
    ``snapshot_extra()`` / ``validate()`` protocol the invariant checker
    and the snapshot layer generalize over.
    """

    def __init__(
        self, name: str, n_sets: int, ways: int, epoch_accesses: int
    ) -> None:
        if epoch_accesses < 0:
            raise ConfigurationError("epoch_accesses must be >= 0")
        self.name = name
        self.n_sets = n_sets
        self.ways = ways
        #: Inserts per automatic rekey epoch (0 = manual rekey only).
        self.epoch_accesses = epoch_accesses
        self._accesses = 0
        self._ext: Dict[int, int] = {}

    # -- placement hooks (subclass) -----------------------------------------

    def _locate(self, tag: int):
        """(inner cache, internal index) holding ``tag``, or ``None``."""
        raise NotImplementedError

    def rekey(self) -> List[Tuple[int, int]]:
        """Advance the epoch; returns the invalidated (tag, ext) lines."""
        raise NotImplementedError

    def _maybe_rekey(self) -> None:
        if not self.epoch_accesses:
            return
        self._accesses += 1
        if self._accesses >= self.epoch_accesses:
            self._accesses = 0
            self.rekey()

    # -- SetAssociativeCache duck interface ---------------------------------
    # set_idx is accepted (duck compatibility) but never used for
    # location: the keyed index is a function of the tag (see module
    # docstring).

    def lookup(self, set_idx: int, tag: int) -> bool:
        located = self._locate(tag)
        if located is None:
            return False
        inner, idx = located
        return inner.lookup(idx, tag)

    def contains(self, set_idx: int, tag: int) -> bool:
        return self._locate(tag) is not None

    def owner_of(self, set_idx: int, tag: int) -> Optional[int]:
        located = self._locate(tag)
        if located is None:
            return None
        inner, idx = located
        return inner.owner_of(idx, tag)

    def remove(self, set_idx: int, tag: int) -> bool:
        located = self._locate(tag)
        if located is None:
            return False
        inner, idx = located
        self._ext.pop(tag, None)
        return inner.remove(idx, tag)

    def flush_all(self, now: int = 0) -> None:
        for inner in self.parts().values():
            inner.flush_all(now)
        self._ext.clear()

    # External (observable) views — derived from the residency map; the
    # product never calls these on the shared caches, tests do.

    def occupancy(self, set_idx: int) -> int:
        return sum(1 for s in self._ext.values() if s == set_idx)

    def tags_in_set(self, set_idx: int) -> List[int]:
        return [t for t, s in self._ext.items() if s == set_idx]

    def peek_victim(self, set_idx: int) -> Optional[int]:
        """No externally predictable eviction candidate under a keyed
        index — exactly the Prime+Scope degradation the defense buys."""
        return None

    @property
    def touched_sets(self) -> int:
        return max(p.touched_sets for p in self.parts().values())

    # Noise clocks stay keyed by the external set (see module docstring);
    # the first part carries the plane.

    def _clock_part(self) -> SetAssociativeCache:
        return next(iter(self.parts().values()))

    def noise_clock(self, set_idx: int) -> int:
        return self._clock_part().noise_clock(set_idx)

    def set_noise_clock(self, set_idx: int, now: int) -> None:
        self._clock_part().set_noise_clock(set_idx, now)

    def exchange_noise_clock(self, set_idx: int, now: int) -> int:
        return self._clock_part().exchange_noise_clock(set_idx, now)

    def bind_keyed_victims(self, crng, cache_id: int) -> None:
        """Counter-mode keyed-victim pass-through (distinct sub-ids)."""
        for i, part in enumerate(self.parts().values()):
            part.bind_keyed_victims(crng, (cache_id + 1) * 1000 + i)

    # -- checker / snapshot protocol ----------------------------------------

    def parts(self) -> Dict[str, SetAssociativeCache]:
        """Inner flat caches, keyed by a stable label (checker protocol)."""
        raise NotImplementedError

    def resident_tags(self):
        return set(self._ext)

    def snapshot_extra(self) -> Dict[str, Any]:
        """Wrapper-local state beyond the inner planes (snapshot protocol)."""
        return {
            "ext": dict(self._ext),
            "accesses": self._accesses,
            "epochs": self._epochs(),
        }

    def restore_extra(self, extra: Dict[str, Any]) -> None:
        self._ext = dict(extra["ext"])
        self._accesses = extra["accesses"]
        self._set_epochs(extra["epochs"])

    def _epochs(self) -> List[int]:
        raise NotImplementedError

    def _set_epochs(self, epochs: List[int]) -> None:
        raise NotImplementedError

    def validate(self) -> None:
        """Internal-consistency check (invariant-checker protocol).

        Raises :class:`ConfigurationError` when the residency map and the
        inner planes disagree, a tag is resident in more than one
        skew/part, or a resident tag is not at its keyed index under the
        current epoch; pure reads only.
        """
        resident: Dict[int, int] = {}
        for part in self.parts().values():
            for key in part._where:
                tag = key // part.n_sets
                if tag in resident:
                    raise ConfigurationError(
                        f"{self.name}: tag {tag} resident in more than one "
                        f"skew/part"
                    )
                resident[tag] = key % part.n_sets
        if set(resident) != set(self._ext):
            missing = set(resident) ^ set(self._ext)
            raise ConfigurationError(
                f"{self.name}: residency map out of sync with planes for "
                f"tags {sorted(missing)[:4]}"
            )
        for tag, idx in resident.items():
            located = self._locate(tag)
            if located is None or located[1] != idx:
                raise ConfigurationError(
                    f"{self.name}: tag {tag} resident at internal set "
                    f"{idx} but the keyed index derives "
                    f"{None if located is None else located[1]}"
                )


class CeaserCache(_RandomizedSharedCache):
    """A shared cache behind one keyed, epoch-rekeyed index function.

    Args:
        name: Structure label.
        n_sets / ways: Geometry (matches the cache it replaces).
        policy_name: Replacement policy of the backing planes.
        rng: Shared cache RNG (stochastic policies).
        seed: Key seed (stands in for the per-boot hardware key).
        epoch_accesses: Inserts per automatic rekey (0 = manual only).
    """

    kind = "ceaser"

    def __init__(
        self,
        name: str,
        n_sets: int,
        ways: int,
        policy_name: str,
        rng: random.Random,
        seed: int = 0,
        epoch_accesses: int = 0,
    ) -> None:
        super().__init__(name, n_sets, ways, epoch_accesses)
        self._index = KeyedSetIndex(n_sets, seed, label=name)
        self._inner = SetAssociativeCache(
            f"{name}[rand]", n_sets, ways, policy_name, rng
        )

    @property
    def epoch(self) -> int:
        return self._index.epoch

    def parts(self) -> Dict[str, SetAssociativeCache]:
        return {"rand": self._inner}

    def _place(self, tag: int) -> int:
        """The keyed internal index of an address this epoch."""
        return self._index.index_of(tag % self.n_sets, tag)

    def _locate(self, tag: int):
        idx = self._place(tag)
        if self._inner.contains(idx, tag):
            return self._inner, idx
        return None

    def insert(
        self, set_idx: int, tag: int, owner: int = 0, update_owner: bool = True
    ):
        evicted = self._inner.insert(
            self._place(tag), tag, owner, update_owner=update_owner
        )
        self._ext[tag] = set_idx
        if evicted is not None:
            self._ext.pop(evicted[0], None)
        self._maybe_rekey()
        return evicted

    def rekey(self) -> List[Tuple[int, int]]:
        """New epoch key; invalidates exactly the lines whose index moved.

        Lines whose keyed index is unchanged under the new key stay
        resident (their placement is still correct); everything else is
        dropped from the planes (rekey-by-flush).  Returns the
        invalidated ``(tag, external set)`` pairs, sorted by tag.
        """
        old = [
            (tag, ext, self._place(tag))
            for tag, ext in sorted(self._ext.items())
        ]
        self._index.rekey()
        invalidated: List[Tuple[int, int]] = []
        for tag, ext, old_idx in old:
            if self._place(tag) != old_idx:
                self._inner.remove(old_idx, tag)
                del self._ext[tag]
                invalidated.append((tag, ext))
        return invalidated

    def _epochs(self) -> List[int]:
        return [self._index.epoch]

    def _set_epochs(self, epochs: List[int]) -> None:
        index = self._index
        index.epoch = epochs[0]
        index._key = epoch_key(index._master, index.epoch)


class SkewedCache(_RandomizedSharedCache):
    """Skewed associativity: per-way-group keyed index functions.

    The ``ways`` are split as evenly as possible into ``n_skews`` groups,
    each backed by its own planes and its own :class:`KeyedSetIndex`.  A
    fill probes every skew at its own index; a miss lands in the first
    skew with a free way at its index, else in a keyed choice between
    the (full) skews — deterministic in the tag, so every execution tier
    derives the same placement without consuming shared RNG state.
    """

    kind = "skew"

    def __init__(
        self,
        name: str,
        n_sets: int,
        ways: int,
        policy_name: str,
        rng: random.Random,
        seed: int = 0,
        n_skews: int = 2,
        epoch_accesses: int = 0,
    ) -> None:
        if n_skews < 2:
            raise ConfigurationError("skewed cache needs at least two skews")
        if ways < n_skews:
            raise ConfigurationError(
                f"cannot split {ways} ways into {n_skews} skews"
            )
        super().__init__(name, n_sets, ways, epoch_accesses)
        self.n_skews = n_skews
        base, extra = divmod(ways, n_skews)
        self._skews: List[SetAssociativeCache] = []
        self._indexes: List[KeyedSetIndex] = []
        for i in range(n_skews):
            skew_ways = base + (1 if i < extra else 0)
            self._skews.append(
                SetAssociativeCache(
                    f"{name}[skew{i}]", n_sets, skew_ways, policy_name, rng
                )
            )
            self._indexes.append(
                KeyedSetIndex(n_sets, seed, label=f"{name}#skew{i}")
            )
        self._select_master = derive_master_key(f"{name}#select", seed)
        self._select_key = epoch_key(self._select_master, 0)

    @property
    def epoch(self) -> int:
        return self._indexes[0].epoch

    def parts(self) -> Dict[str, SetAssociativeCache]:
        return {f"skew{i}": skew for i, skew in enumerate(self._skews)}

    def _place(self, skew: int, tag: int) -> int:
        """The keyed internal index of an address in ``skew`` this epoch."""
        return self._indexes[skew].index_of(tag % self.n_sets, tag)

    def _locate(self, tag: int):
        for i, skew in enumerate(self._skews):
            idx = self._place(i, tag)
            if skew.contains(idx, tag):
                return skew, idx
        return None

    def insert(
        self, set_idx: int, tag: int, owner: int = 0, update_owner: bool = True
    ):
        located = self._locate(tag)
        if located is not None:  # hit: recency touch in the holding skew
            inner, idx = located
            evicted = inner.insert(idx, tag, owner, update_owner=update_owner)
            self._ext[tag] = set_idx
        else:
            indices = [self._place(i, tag) for i in range(self.n_skews)]
            choice = None
            for i, skew in enumerate(self._skews):
                if skew.occupancy(indices[i]) < skew.ways:
                    choice = i
                    break
            if choice is None:
                choice = keyed_choice(self._select_key, tag, self.n_skews)
            evicted = self._skews[choice].insert(
                indices[choice], tag, owner, update_owner=update_owner
            )
            self._ext[tag] = set_idx
            if evicted is not None:
                self._ext.pop(evicted[0], None)
        self._maybe_rekey()
        return evicted

    def rekey(self) -> List[Tuple[int, int]]:
        """New epoch keys in every skew; invalidates the remapped lines."""
        old = []
        for tag, ext in sorted(self._ext.items()):
            located = self._locate(tag)
            if located is not None:
                old.append((tag, ext, self._skews.index(located[0]),
                            located[1]))
        for index in self._indexes:
            index.rekey()
        self._select_key = epoch_key(self._select_master, self.epoch)
        invalidated: List[Tuple[int, int]] = []
        for tag, ext, i, old_idx in old:
            if self._place(i, tag) != old_idx:
                self._skews[i].remove(old_idx, tag)
                del self._ext[tag]
                invalidated.append((tag, ext))
        return invalidated

    def _epochs(self) -> List[int]:
        return [index.epoch for index in self._indexes]

    def _set_epochs(self, epochs: List[int]) -> None:
        for index, epoch in zip(self._indexes, epochs):
            index.epoch = epoch
            index._key = epoch_key(index._master, epoch)
        self._select_key = epoch_key(self._select_master, epochs[0])
