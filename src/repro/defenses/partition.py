"""Way partitioning of the shared LLC/SF (Intel CAT / DAWG style).

Each security domain (tenant) is assigned a disjoint subset of the ways
of every shared cache set; insertions triggered by a domain may evict
only within that domain's ways.  Lookups still see all ways (the cache
stays functionally shared), but cross-domain *contention* — the entire
basis of Prime+Probe — disappears.

Implementation: a :class:`WayPartitionedCache` presents the same duck
interface as :class:`repro.memsys.cache.SetAssociativeCache` while
delegating to one sub-cache per domain, so the hierarchy needs no
changes; :func:`apply_way_partitioning` swaps a machine's SF and LLC for
partitioned versions at setup time.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..memsys.cache import SetAssociativeCache
from ..memsys.hierarchy import NOISE_OWNER, SHARED_OWNER
from ..memsys.machine import Machine

#: Domain label for traffic not belonging to a registered tenant
#: (background tenants, shared-line insertions without a tracked owner).
OTHER_DOMAIN = "other"


class WayPartitionedCache:
    """A sliced shared cache with per-domain way partitions.

    Args:
        name: Structure label.
        n_sets: Total (global) set count.
        policy_name: Replacement policy for every partition.
        rng: RNG for stochastic policies.
        partitions: domain -> number of ways reserved for that domain.
        domain_of_owner: Maps an owner annotation (core id, SHARED_OWNER,
            NOISE_OWNER) to a domain label.
    """

    def __init__(
        self,
        name: str,
        n_sets: int,
        policy_name: str,
        rng: random.Random,
        partitions: Dict[str, int],
        domain_of_owner: Callable[[int], str],
    ) -> None:
        if OTHER_DOMAIN not in partitions:
            raise ConfigurationError(
                f"partitions must reserve ways for {OTHER_DOMAIN!r}"
            )
        if any(w < 1 for w in partitions.values()):
            raise ConfigurationError("every partition needs at least one way")
        self.name = name
        self.n_sets = n_sets
        self.ways = sum(partitions.values())
        self._domain_of_owner = domain_of_owner
        self._parts: Dict[str, SetAssociativeCache] = {
            domain: SetAssociativeCache(
                f"{name}[{domain}]", n_sets, ways, policy_name, rng
            )
            for domain, ways in partitions.items()
        }

    #: Whether one tag may legitimately be resident in several parts at
    #: once (copy-on-access designs set this; the invariant checker's
    #: partition-overlap scan keys off it).
    allows_cross_part_copies = False

    def parts(self) -> Dict[str, SetAssociativeCache]:
        """Inner flat caches by domain label (checker/snapshot protocol)."""
        return self._parts

    def bind_keyed_victims(self, crng, cache_id: int) -> None:
        """Counter-mode keyed-victim pass-through (distinct sub-ids)."""
        for i, part in enumerate(self._parts.values()):
            part.bind_keyed_victims(crng, (cache_id + 1) * 1000 + i)

    # -- Interface mirrored from SetAssociativeCache ------------------------

    def _domain(self, owner: int) -> str:
        domain = self._domain_of_owner(owner)
        if domain not in self._parts:
            return OTHER_DOMAIN
        return domain

    def _holding_part(self, set_idx: int, tag: int) -> Optional[SetAssociativeCache]:
        for part in self._parts.values():
            if part.contains(set_idx, tag):
                return part
        return None

    def lookup(self, set_idx: int, tag: int) -> bool:
        part = self._holding_part(set_idx, tag)
        if part is None:
            return False
        return part.lookup(set_idx, tag)

    def contains(self, set_idx: int, tag: int) -> bool:
        return self._holding_part(set_idx, tag) is not None

    def owner_of(self, set_idx: int, tag: int) -> Optional[int]:
        part = self._holding_part(set_idx, tag)
        return None if part is None else part.owner_of(set_idx, tag)

    def occupancy(self, set_idx: int) -> int:
        return sum(p.occupancy(set_idx) for p in self._parts.values())

    def tags_in_set(self, set_idx: int) -> List[int]:
        return [t for p in self._parts.values() for t in p.tags_in_set(set_idx)]

    def peek_victim(self, set_idx: int) -> Optional[int]:
        """Best-effort: the eviction candidate of the fullest partition."""
        best = None
        for part in self._parts.values():
            candidate = part.peek_victim(set_idx)
            if candidate is not None:
                best = candidate
        return best

    def effective_ways(self, owner: int) -> int:
        """Associativity actually available to ``owner``'s insertions.

        The partition-aware probe the eviction-set machinery duck-types
        against (plain caches do not define it): under partitioning, the
        contention-relevant way count is the owner's domain budget, not
        the config total — an attacker sizing sets for the static
        associativity builds supersets that can never be minimized.
        """
        return self._parts[self._domain(owner)].ways

    def insert(
        self, set_idx: int, tag: int, owner: int = 0, update_owner: bool = True
    ):
        """Insert into the owner's partition; eviction stays inside it.

        If another domain already holds the tag (e.g. a line transitioning
        between tenants), it is moved: removed there, inserted here.
        """
        target = self._parts[self._domain(owner)]
        holder = self._holding_part(set_idx, tag)
        if holder is not None and holder is not target:
            holder.remove(set_idx, tag)
        return target.insert(set_idx, tag, owner, update_owner=update_owner)

    def remove(self, set_idx: int, tag: int) -> bool:
        part = self._holding_part(set_idx, tag)
        return part.remove(set_idx, tag) if part is not None else False

    def flush_all(self, now: int = 0) -> None:
        for part in self._parts.values():
            part.flush_all(now)

    @property
    def touched_sets(self) -> int:
        return max(p.touched_sets for p in self._parts.values())

    # Noise bookkeeping attaches to the background-tenant partition
    # (background insertions only ever land there).

    def noise_clock(self, set_idx: int) -> int:
        return self._parts[OTHER_DOMAIN].noise_clock(set_idx)

    def set_noise_clock(self, set_idx: int, now: int) -> None:
        self._parts[OTHER_DOMAIN].set_noise_clock(set_idx, now)

    def exchange_noise_clock(self, set_idx: int, now: int) -> int:
        return self._parts[OTHER_DOMAIN].exchange_noise_clock(set_idx, now)


def apply_way_partitioning(
    machine: Machine,
    core_domains: Dict[int, str],
    sf_partitions: Dict[str, int],
    llc_partitions: Optional[Dict[str, int]] = None,
) -> None:
    """Replace a machine's SF and LLC with way-partitioned versions.

    Must be called before any traffic (the shared caches start empty).

    Args:
        core_domains: core id -> domain label (tenant).
        sf_partitions / llc_partitions: domain -> reserved ways; must
            include :data:`OTHER_DOMAIN` for background/shared traffic.
            ``llc_partitions`` defaults to the SF assignment.
    """
    if llc_partitions is None:
        llc_partitions = dict(sf_partitions)
    hier = machine.hierarchy
    if hier.sf.touched_sets or hier.llc.touched_sets:
        raise ConfigurationError(
            "apply way partitioning before any shared-cache traffic"
        )

    def domain_of_owner(owner: int) -> str:
        if owner in (NOISE_OWNER, SHARED_OWNER):
            return OTHER_DOMAIN
        return core_domains.get(owner, OTHER_DOMAIN)

    cfg = machine.cfg
    rng = hier._rng
    hier.sf = WayPartitionedCache(
        "SF", cfg.llc.total_sets, cfg.sf_policy, rng, sf_partitions,
        domain_of_owner,
    )
    hier.llc = WayPartitionedCache(
        "LLC", cfg.llc.total_sets, cfg.llc_policy, rng, llc_partitions,
        domain_of_owner,
    )
